"""Baseline placements the paper compares against.

* **Declaration order** — items packed in first-touch order; models what an
  SPM allocator with no shift awareness produces.
* **Random** — seeded shuffles; the evaluation averages several seeds.
* **Frequency (hot-near-port)** — the strongest shift-oblivious baseline:
  hottest items sit at the offsets closest to an access port.
"""

from __future__ import annotations

import random

from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.errors import CapacityError


def declaration_order_placement(problem: PlacementProblem) -> Placement:
    """Items in first-touch order, filling DBC 0, then DBC 1, …"""
    return Placement.from_order(list(problem.items), problem.config)


def random_placement(problem: PlacementProblem, seed: int = 0) -> Placement:
    """Items shuffled uniformly into the first ``ceil(n/L)`` DBCs."""
    rng = random.Random(seed)
    items = list(problem.items)
    rng.shuffle(items)
    return Placement.from_order(items, problem.config)


def _port_proximity_offsets(config) -> list[int]:
    """DBC offsets sorted by distance to the nearest port (closest first)."""
    return sorted(
        range(config.words_per_dbc),
        key=lambda offset: (
            min(abs(offset - port) for port in config.port_offsets),
            offset,
        ),
    )


def frequency_placement(
    problem: PlacementProblem,
    distribute: str = "round_robin",
) -> Placement:
    """Hottest items at port-nearest offsets.

    ``distribute`` controls how items spread over DBCs:

    * ``"round_robin"`` — the hottest ``num_dbcs`` items each get the
      port-closest offset of their own DBC, the next wave the second-closest
      offsets, and so on.  Spreads heat so several DBCs stay near their
      ports.
    * ``"packed"`` — fill DBC 0 entirely with the hottest ``L`` items
      (closest offsets first), then DBC 1, …
    """
    config = problem.config
    hot = list(problem.hot_order)
    if len(hot) > config.capacity_words:
        raise CapacityError(
            f"{len(hot)} items exceed capacity {config.capacity_words}"
        )
    proximity = _port_proximity_offsets(config)
    mapping: dict[str, Slot] = {}
    if distribute == "round_robin":
        num_dbcs = min(config.num_dbcs, max(1, problem.min_dbcs_needed))
        for index, item in enumerate(hot):
            dbc = index % num_dbcs
            rank = index // num_dbcs
            mapping[item] = Slot(dbc, proximity[rank])
    elif distribute == "packed":
        length = config.words_per_dbc
        for index, item in enumerate(hot):
            dbc = index // length
            rank = index % length
            mapping[item] = Slot(dbc, proximity[rank])
    else:
        raise ValueError(
            f"unknown distribute mode {distribute!r}; "
            "expected 'round_robin' or 'packed'"
        )
    return Placement(mapping)


def random_placement_mean_shifts(
    problem: PlacementProblem,
    seeds: range | list[int] = range(5),
) -> float:
    """Mean shift count of random placements over several seeds."""
    from repro.core.cost import evaluate_placement

    costs = [
        evaluate_placement(problem, random_placement(problem, seed))
        for seed in seeds
    ]
    return sum(costs) / len(costs)
