"""Placement representation: items → (DBC, offset) slots.

A :class:`Placement` is the output of every algorithm in :mod:`repro.core`
and the input of the simulator.  It is an injective mapping from item names
to :class:`Slot` coordinates on a DWM array; validation enforces injectivity
and capacity against a :class:`~repro.dwm.config.DWMConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.dwm.config import DWMConfig
from repro.errors import CapacityError, PlacementError


@dataclass(frozen=True, order=True)
class Slot:
    """A word slot on the array: DBC index and offset within the DBC."""

    dbc: int
    offset: int

    def __post_init__(self) -> None:
        if self.dbc < 0:
            raise PlacementError(f"negative DBC index: {self.dbc}")
        if self.offset < 0:
            raise PlacementError(f"negative offset: {self.offset}")


class Placement:
    """Injective mapping from item names to slots."""

    def __init__(self, mapping: Mapping[str, Slot | tuple[int, int]]) -> None:
        slots: dict[str, Slot] = {}
        used: set[Slot] = set()
        for item, raw in mapping.items():
            slot = raw if isinstance(raw, Slot) else Slot(*raw)
            if slot in used:
                raise PlacementError(
                    f"slot {slot} assigned to more than one item "
                    f"(second: {item!r})"
                )
            used.add(slot)
            slots[item] = slot
        self._slots = slots

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[str]:
        return iter(self._slots)

    def __contains__(self, item: str) -> bool:
        return item in self._slots

    def __getitem__(self, item: str) -> Slot:
        try:
            return self._slots[item]
        except KeyError:
            raise PlacementError(f"item {item!r} has no placement") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return self._slots == other._slots

    def __repr__(self) -> str:
        return f"Placement({len(self._slots)} items)"

    def items(self):
        """(item, slot) pairs."""
        return self._slots.items()

    def as_dict(self) -> dict[str, tuple[int, int]]:
        """Plain-dict form ``{item: (dbc, offset)}`` for serialisation."""
        return {item: (slot.dbc, slot.offset) for item, slot in self._slots.items()}

    # ------------------------------------------------------------------
    # Validation and structure
    # ------------------------------------------------------------------
    def validate(self, config: DWMConfig, required_items: Iterable[str] = ()) -> None:
        """Check the placement fits ``config`` and covers ``required_items``.

        Raises :class:`PlacementError` (or :class:`CapacityError`) otherwise.
        """
        for item, slot in self._slots.items():
            if slot.dbc >= config.num_dbcs:
                raise CapacityError(
                    f"item {item!r} placed on DBC {slot.dbc} but the array "
                    f"has only {config.num_dbcs} DBCs"
                )
            if slot.offset >= config.words_per_dbc:
                raise PlacementError(
                    f"item {item!r} placed at offset {slot.offset} but DBCs "
                    f"have only {config.words_per_dbc} words"
                )
        missing = [item for item in required_items if item not in self._slots]
        if missing:
            raise PlacementError(
                f"{len(missing)} items lack a placement "
                f"(first few: {missing[:5]})"
            )

    def dbcs_used(self) -> list[int]:
        """Sorted list of DBC indices that hold at least one item."""
        return sorted({slot.dbc for slot in self._slots.values()})

    def dbc_contents(self, dbc: int) -> dict[int, str]:
        """``{offset: item}`` for one DBC."""
        return {
            slot.offset: item
            for item, slot in self._slots.items()
            if slot.dbc == dbc
        }

    def groups(self) -> dict[int, list[str]]:
        """Items per DBC, ordered by offset."""
        result: dict[int, list[str]] = {}
        for dbc in self.dbcs_used():
            contents = self.dbc_contents(dbc)
            result[dbc] = [contents[offset] for offset in sorted(contents)]
        return result

    # ------------------------------------------------------------------
    # Constructors and edits
    # ------------------------------------------------------------------
    @classmethod
    def from_order(
        cls, ordered_items: Sequence[str], config: DWMConfig
    ) -> "Placement":
        """Fill DBC 0 offsets 0..L-1, then DBC 1, … in the given item order."""
        if len(set(ordered_items)) != len(ordered_items):
            raise PlacementError("ordered_items contains duplicates")
        if len(ordered_items) > config.capacity_words:
            raise CapacityError(
                f"{len(ordered_items)} items exceed array capacity "
                f"{config.capacity_words}"
            )
        length = config.words_per_dbc
        return cls(
            {
                item: Slot(index // length, index % length)
                for index, item in enumerate(ordered_items)
            }
        )

    @classmethod
    def from_groups(
        cls,
        groups: Mapping[int, Sequence[str]] | Sequence[Sequence[str]],
        config: DWMConfig,
        anchor_offsets: Mapping[int, int] | None = None,
    ) -> "Placement":
        """Place each group on its own DBC, in order, starting at an anchor.

        ``groups`` maps DBC index → ordered item list (or is a plain list of
        groups assigned to DBCs 0, 1, …).  ``anchor_offsets`` optionally gives
        the starting offset of each group (default: centred so the group's
        middle lands on the DBC's nearest port — the placement the ordering
        phase of the heuristic produces).
        """
        if not isinstance(groups, Mapping):
            groups = dict(enumerate(groups))
        mapping: dict[str, Slot] = {}
        for dbc, ordered in groups.items():
            ordered = list(ordered)
            if len(ordered) > config.words_per_dbc:
                raise CapacityError(
                    f"group for DBC {dbc} has {len(ordered)} items, "
                    f"capacity is {config.words_per_dbc}"
                )
            if anchor_offsets is not None and dbc in anchor_offsets:
                start = anchor_offsets[dbc]
            else:
                port = config.port_offsets[0]
                start = max(
                    0,
                    min(
                        config.words_per_dbc - len(ordered),
                        port - len(ordered) // 2,
                    ),
                )
            if start < 0 or start + len(ordered) > config.words_per_dbc:
                raise PlacementError(
                    f"group for DBC {dbc} does not fit at offset {start}"
                )
            for position, item in enumerate(ordered):
                if item in mapping:
                    raise PlacementError(f"item {item!r} appears in two groups")
                mapping[item] = Slot(dbc, start + position)
        return cls(mapping)

    def with_swapped(self, item_a: str, item_b: str) -> "Placement":
        """New placement with the two items' slots exchanged."""
        slot_a, slot_b = self[item_a], self[item_b]
        updated = dict(self._slots)
        updated[item_a] = slot_b
        updated[item_b] = slot_a
        return Placement(updated)

    def with_moved(self, item: str, slot: Slot | tuple[int, int]) -> "Placement":
        """New placement with ``item`` moved to ``slot`` (must be free)."""
        slot = slot if isinstance(slot, Slot) else Slot(*slot)
        updated = dict(self._slots)
        updated[item] = slot
        return Placement(updated)
