"""The paper's placement heuristic: grouping + ordering (+ refinement).

Pipeline (see DESIGN.md §4):

1. **Affinity graph** — adjacency counts of consecutive accesses
   (:attr:`PlacementProblem.affinity`).
2. **Grouping** — candidate partitions of items over DBCs.  Because
   cross-DBC transitions are free but splitting a stream creates
   *second-order* adjacencies inside each DBC's restricted subsequence, no
   single grouping objective wins on every access pattern.  The heuristic
   therefore builds a small portfolio of candidate groupings:

   * *interference-minimizing* — greedy + KL-refined partition minimizing the
     global affinity weight kept inside DBCs (wins on alternation-heavy
     patterns);
   * *chain-and-cut* — a global greedy affinity chain cut into balanced
     contiguous blocks (wins on streaming patterns, which it keeps intact);
   * *declaration blocks* — first-touch blocks of ``L`` (the safe fallback);
   * *hot-spread* — hottest items dealt round-robin so every DBC keeps a hot
     core at its port (wins on skewed, structure-free patterns).

3. **Ordering** — per DBC, MinLA-style chain construction on the *restricted*
   affinity graph, anchored on a port (:mod:`repro.core.ordering`), applied
   to every candidate.
4. **Selection** — candidates are scored with the exact trace-cost evaluator
   and the cheapest placement wins (three evaluations; still linear time in
   the trace).
5. Optional **local refinement** (:mod:`repro.core.local_search`).

:func:`heuristic_placement` is the full algorithm; the ablation variants
(`grouping_only_placement`, `ordering_only_placement`) isolate each phase's
contribution for experiment E10.
"""

from __future__ import annotations

from repro.core.cost import evaluate_placement
from repro.core.fast_eval import FAST_EVAL_MIN_ACCESSES, evaluate_placements_fast
from repro.core.grouping import greedy_min_affinity_grouping, refine_grouping
from repro.core.ordering import greedy_chain_order, order_groups
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem


def chain_and_cut_groups(
    problem: PlacementProblem,
    num_groups: int | None = None,
) -> list[list[str]]:
    """Global affinity chain cut into balanced contiguous blocks.

    The chain keeps strongly-affine (e.g. streaming) items consecutive; the
    cut spreads it over all available DBCs so each block stays short and can
    be anchored near a port.
    """
    config = problem.config
    if num_groups is None:
        num_groups = min(config.num_dbcs, problem.num_items)
    chain = greedy_chain_order(list(problem.items), problem.affinity)
    size = -(-len(chain) // num_groups)  # ceil division
    size = min(size, config.words_per_dbc)
    groups = [chain[start : start + size] for start in range(0, len(chain), size)]
    # The ceil split can yield at most num_groups blocks of `size` unless
    # size was clamped by capacity; re-check the group count.
    if len(groups) > config.num_dbcs:
        size = config.words_per_dbc
        groups = [
            chain[start : start + size] for start in range(0, len(chain), size)
        ]
    return groups


def declaration_block_groups(problem: PlacementProblem) -> list[list[str]]:
    """First-touch order cut into blocks of ``L`` (declaration grouping)."""
    length = problem.config.words_per_dbc
    items = list(problem.items)
    return [items[start : start + length] for start in range(0, len(items), length)]


def hot_spread_groups(
    problem: PlacementProblem,
    num_groups: int | None = None,
) -> list[list[str]]:
    """Hottest items dealt round-robin across DBCs (hot-spread grouping).

    Gives every DBC a hot core near its port; wins on popularity-skewed
    patterns with little pairwise structure (e.g. table lookups around a hot
    accumulator).
    """
    config = problem.config
    if num_groups is None:
        num_groups = min(config.num_dbcs, problem.num_items)
    groups: list[list[str]] = [[] for _ in range(num_groups)]
    for index, item in enumerate(problem.hot_order):
        groups[index % num_groups].append(item)
    return groups


def heuristic_placement(
    problem: PlacementProblem,
    refine_groups: bool = True,
    num_groups: int | None = None,
) -> Placement:
    """Full grouping + ordering heuristic with candidate selection."""
    candidates: list[list[list[str]]] = []
    interference = greedy_min_affinity_grouping(problem, num_groups=num_groups)
    if refine_groups:
        interference = refine_grouping(interference, problem)
    candidates.append(interference)
    candidates.append(chain_and_cut_groups(problem, num_groups=num_groups))
    candidates.append(declaration_block_groups(problem))
    candidates.append(hot_spread_groups(problem, num_groups=num_groups))
    placements = [order_groups(problem, groups) for groups in candidates]
    if len(problem.trace) >= FAST_EVAL_MIN_ACCESSES:
        # Batch evaluation shares the trace resolution across candidates.
        costs = evaluate_placements_fast(problem, placements, validate=False)
    else:
        costs = [
            evaluate_placement(problem, placement, validate=False)
            for placement in placements
        ]
    best_placement: Placement | None = None
    best_cost: int | None = None
    for placement, cost in zip(placements, costs):
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_placement = placement
    assert best_placement is not None
    return best_placement


def grouping_only_placement(problem: PlacementProblem) -> Placement:
    """Ablation: affinity-aware grouping, but naive (first-touch) ordering.

    Groups are computed as in the full heuristic; within each DBC items are
    laid out in first-touch order starting at offset 0 (no chain
    construction, no port anchoring).
    """
    groups = refine_grouping(
        greedy_min_affinity_grouping(problem), problem
    )
    first_touch = {item: index for index, item in enumerate(problem.items)}
    naive_groups = [
        sorted(group, key=lambda item: first_touch[item]) for group in groups
    ]
    return Placement.from_groups(
        {dbc: group for dbc, group in enumerate(naive_groups) if group},
        problem.config,
        anchor_offsets={
            dbc: 0 for dbc, group in enumerate(naive_groups) if group
        },
    )


def ordering_only_placement(problem: PlacementProblem) -> Placement:
    """Ablation: affinity-aware ordering, but naive (packed) grouping.

    Items fill DBCs in first-touch order blocks of ``L`` (as the declaration
    baseline would), then each block is chain-ordered and port-anchored.
    """
    length = problem.config.words_per_dbc
    items = list(problem.items)
    groups = [items[start : start + length] for start in range(0, len(items), length)]
    return order_groups(problem, groups)
