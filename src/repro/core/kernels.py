"""Compiled kernels for the lazy port-state automaton (optional fast path).

The lazy shift-cost replay is a deterministic automaton: after any access
the head sits at ``offset − p`` for the port ``p`` chosen greedily
(ties break to the lowest port).  The numpy formulations in
:mod:`repro.core.incremental` vectorise this walk (closed form for two
ports, pointer-doubling for ``P ≥ 3``), but they still materialise O(k)
intermediates and pay ~25 numpy dispatches per chain — the dominant cost
of incremental delta evaluation (see docs/PERFORMANCE.md).

This module provides the same walk as a *compiled* single pass with three
interchangeable backends, selected lazily on first use:

1. **numba** — ``@njit``-compiled from the Python reference below, used
   when the optional ``numba`` package is importable;
2. **cc** — an embedded C translation built with the system C compiler
   into a content-hash-cached shared library loaded via :mod:`ctypes`
   (no new dependencies; the ``.so`` is cached under
   ``$REPRO_KERNEL_CACHE`` or ``~/.cache/repro-dwm/kernels``);
3. **numpy** — no compiled backend: :func:`compiled` returns ``None`` and
   callers keep their existing vectorised-numpy / scalar paths.

All backends are **bit-identical** to the scalar reference
(:func:`repro.dwm.dbc.port_access_cost` greedy walk): integer math only,
strict ``<`` tie-breaking.  Identity is policed by ``tests/test_kernels.py``
and the ``repro fuzz`` kernel-parity oracle
(:func:`repro.verify.oracles.check_kernel_parity`).

Environment knobs:

* ``REPRO_NO_NUMBA=1`` — force the pure python/numpy fallback (disables
  *both* compiled backends; the documented way to verify the fallback).
* ``REPRO_KERNEL=auto|numba|cc|numpy`` — pin a specific backend;
  ``numba``/``cc`` fall through to ``numpy`` when unavailable.
* ``REPRO_KERNEL_CACHE`` — directory for compiled ``.so`` artifacts.

Three entry points, shared by the incremental evaluator and the batch
simulation engine:

* ``lazy_costs(offsets, ports, out)`` — per-access costs of one replay;
* ``lazy_chain_cost(positions, item_at, offset_of, ports)`` — total cost
  of the chain ``offset_of[item_at[positions[t]]]`` (fused gather+walk,
  no intermediates);
* ``lazy_merge_cost(base, skip, add, item_at, offset_of, ports)`` —
  total cost of the chain over ``(base \\ skip) ∪ add`` positions merged
  on the fly (all three inputs ascending; ``skip ⊆ base``, ``add``
  disjoint from ``base``).  This is the delta-probe kernel: membership
  changes never pay a concat+sort.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path

#: Environment variable forcing the pure python/numpy fallback.
NO_NUMBA_ENV = "REPRO_NO_NUMBA"

#: Environment variable pinning the backend (auto|numba|cc|numpy).
KERNEL_ENV = "REPRO_KERNEL"

#: Environment variable overriding the compiled-artifact cache directory.
KERNEL_CACHE_ENV = "REPRO_KERNEL_CACHE"

_C_SOURCE = r"""
#include <stdint.h>

/* Branchless |v|: the greedy pick below is data-dependent, so any branch
   on it mispredicts ~50% on low-locality traces. */
static inline int64_t iabs64(int64_t v) {
    int64_t m = v >> 63;
    return (v + m) ^ m;
}

/* One branchless automaton step for the common P=2 case: pick the port
   minimising |offset - port - head|, strict < keeps the lower port on
   ties (take1 only when c1 < c0). */
#define STEP2(offset)                                                      \
    do {                                                                   \
        int64_t t0 = (offset) - p0;                                        \
        int64_t t1 = (offset) - p1;                                        \
        int64_t c0 = iabs64(t0 - head);                                    \
        int64_t c1 = iabs64(t1 - head);                                    \
        int64_t take1 = -(int64_t)(c1 < c0);                               \
        cost = (c1 & take1) | (c0 & ~take1);                               \
        head = (t1 & take1) | (t0 & ~take1);                               \
        total += cost;                                                     \
    } while (0)

/* Generic branchless step for P >= 3 (inner min is mask-selected). */
#define STEPN(offset)                                                      \
    do {                                                                   \
        int64_t best_cost = iabs64((offset) - ports[0] - head);            \
        int64_t best_target = (offset) - ports[0];                         \
        int64_t p;                                                         \
        for (p = 1; p < num_ports; ++p) {                                  \
            int64_t target = (offset) - ports[p];                          \
            int64_t c = iabs64(target - head);                             \
            int64_t take = -(int64_t)(c < best_cost);                      \
            best_cost = (c & take) | (best_cost & ~take);                  \
            best_target = (target & take) | (best_target & ~take);         \
        }                                                                  \
        cost = best_cost;                                                  \
        total += best_cost;                                                \
        head = best_target;                                                \
    } while (0)

/* Per-access lazy costs of one replay.  Head starts at 0.  Returns the
   total; fills `out` (may be NULL) with per-access costs. */
int64_t repro_lazy_costs(const int64_t *offsets, int64_t n,
                         const int64_t *ports, int64_t num_ports,
                         int64_t *out)
{
    int64_t head = 0, total = 0, cost, t;
    if (num_ports == 1) {
        int64_t port = ports[0];
        for (t = 0; t < n; ++t) {
            int64_t target = offsets[t] - port;
            cost = iabs64(target - head);
            total += cost;
            head = target;
            if (out) out[t] = cost;
        }
        return total;
    }
    if (num_ports == 2) {
        int64_t p0 = ports[0], p1 = ports[1];
        for (t = 0; t < n; ++t) {
            STEP2(offsets[t]);
            if (out) out[t] = cost;
        }
        return total;
    }
    for (t = 0; t < n; ++t) {
        STEPN(offsets[t]);
        if (out) out[t] = cost;
    }
    return total;
}

/* Fused gather + walk: the replayed offset sequence is
   offset_of[item_at[positions[t]]].  No intermediates. */
int64_t repro_lazy_chain_cost(const int64_t *positions, int64_t n,
                              const int64_t *item_at,
                              const int64_t *offset_of,
                              const int64_t *ports, int64_t num_ports)
{
    int64_t head = 0, total = 0, cost, t;
    if (num_ports == 2) {
        int64_t p0 = ports[0], p1 = ports[1];
        for (t = 0; t < n; ++t) {
            STEP2(offset_of[item_at[positions[t]]]);
        }
        return total;
    }
    if (num_ports == 1) {
        int64_t port = ports[0];
        for (t = 0; t < n; ++t) {
            int64_t target = offset_of[item_at[positions[t]]] - port;
            total += iabs64(target - head);
            head = target;
        }
        return total;
    }
    for (t = 0; t < n; ++t) {
        STEPN(offset_of[item_at[positions[t]]]);
    }
    return total;
}

/* Walk over (base \ skip) | add without materialising the merged array.
   base/skip/add ascending; skip is a subset of base; add is disjoint
   from base.  Offsets come from offset_of[item_at[pos]]. */
int64_t repro_lazy_merge_cost(const int64_t *base, int64_t nb,
                              const int64_t *skip, int64_t ns,
                              const int64_t *add, int64_t na,
                              const int64_t *item_at,
                              const int64_t *offset_of,
                              const int64_t *ports, int64_t num_ports)
{
    int64_t ib = 0, is = 0, ia = 0;
    int64_t head = 0, total = 0, cost;
    int two = (num_ports == 2);
    int64_t p0 = ports[0], p1 = two ? ports[1] : 0;
    for (;;) {
        int64_t pos;
        while (ib < nb && is < ns && base[ib] == skip[is]) { ++ib; ++is; }
        if (ib < nb && (ia >= na || base[ib] < add[ia])) {
            pos = base[ib++];
        } else if (ia < na) {
            pos = add[ia++];
        } else {
            break;
        }
        {
            int64_t offset = offset_of[item_at[pos]];
            if (two) {
                STEP2(offset);
            } else if (num_ports == 1) {
                int64_t target = offset - p0;
                total += iabs64(target - head);
                head = target;
            } else {
                STEPN(offset);
            }
        }
    }
    (void)cost;
    return total;
}
"""


# ---------------------------------------------------------------------------
# Python reference bodies (compiled by numba; also documentation of intent).
# ---------------------------------------------------------------------------

def _py_lazy_costs(offsets, ports, out):
    head = 0
    total = 0
    num_ports = ports.shape[0]
    for t in range(offsets.shape[0]):
        offset = offsets[t]
        best_cost = -1
        best_target = 0
        for p in range(num_ports):
            target = offset - ports[p]
            cost = target - head
            if cost < 0:
                cost = -cost
            if best_cost < 0 or cost < best_cost:
                best_cost = cost
                best_target = target
        total += best_cost
        head = best_target
        out[t] = best_cost
    return total


def _py_lazy_chain_cost(positions, item_at, offset_of, ports):
    head = 0
    total = 0
    num_ports = ports.shape[0]
    for t in range(positions.shape[0]):
        offset = offset_of[item_at[positions[t]]]
        best_cost = -1
        best_target = 0
        for p in range(num_ports):
            target = offset - ports[p]
            cost = target - head
            if cost < 0:
                cost = -cost
            if best_cost < 0 or cost < best_cost:
                best_cost = cost
                best_target = target
        total += best_cost
        head = best_target
    return total


def _py_lazy_merge_cost(base, skip, add, item_at, offset_of, ports):
    ib = 0
    is_ = 0
    ia = 0
    nb = base.shape[0]
    ns = skip.shape[0]
    na = add.shape[0]
    head = 0
    total = 0
    num_ports = ports.shape[0]
    while True:
        while ib < nb and is_ < ns and base[ib] == skip[is_]:
            ib += 1
            is_ += 1
        if ib < nb and (ia >= na or base[ib] < add[ia]):
            pos = base[ib]
            ib += 1
        elif ia < na:
            pos = add[ia]
            ia += 1
        else:
            break
        offset = offset_of[item_at[pos]]
        best_cost = -1
        best_target = 0
        for p in range(num_ports):
            target = offset - ports[p]
            cost = target - head
            if cost < 0:
                cost = -cost
            if best_cost < 0 or cost < best_cost:
                best_cost = cost
                best_target = target
        total += best_cost
        head = best_target
    return total


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

class CompiledKernels:
    """A resolved compiled backend (``numba`` or ``cc``).

    All array arguments must be C-contiguous ``int64`` numpy arrays; the
    helpers in this module's callers guarantee that (argsort outputs and
    dense gather arrays are contiguous by construction).
    """

    def __init__(self, name: str, impl) -> None:
        import numpy as np

        self._np = np
        self.name = name
        self._impl = impl

    def lazy_costs(self, offsets, ports, out=None):
        """Per-access costs; returns ``out`` (allocated when ``None``)."""
        np = self._np
        if out is None:
            out = np.empty(offsets.size, dtype=np.int64)
        ports = np.ascontiguousarray(ports, dtype=np.int64)
        self._impl.lazy_costs(
            np.ascontiguousarray(offsets, dtype=np.int64), ports, out
        )
        return out

    def lazy_chain_cost(self, positions, item_at, offset_of, ports) -> int:
        np = self._np
        return int(
            self._impl.lazy_chain_cost(
                np.ascontiguousarray(positions, dtype=np.int64),
                item_at,
                offset_of,
                np.ascontiguousarray(ports, dtype=np.int64),
            )
        )

    def lazy_merge_cost(
        self, base, skip, add, item_at, offset_of, ports
    ) -> int:
        np = self._np
        return int(
            self._impl.lazy_merge_cost(
                np.ascontiguousarray(base, dtype=np.int64),
                np.ascontiguousarray(skip, dtype=np.int64),
                np.ascontiguousarray(add, dtype=np.int64),
                item_at,
                offset_of,
                np.ascontiguousarray(ports, dtype=np.int64),
            )
        )


class _NumbaImpl:
    """``@njit``-compiled reference bodies."""

    def __init__(self, numba) -> None:
        jit = numba.njit(cache=False, fastmath=False, nogil=True)
        self._costs = jit(_py_lazy_costs)
        self._chain = jit(_py_lazy_chain_cost)
        self._merge = jit(_py_lazy_merge_cost)
        import numpy as np

        # Force compilation now so selection fails here (and falls back)
        # rather than mid-optimization.
        one = np.zeros(1, dtype=np.int64)
        self._costs(one, np.asarray([0], dtype=np.int64), one.copy())
        self._chain(one, one, one, np.asarray([0], dtype=np.int64))
        self._merge(
            one, one[:0], one[:0], one, one, np.asarray([0], dtype=np.int64)
        )

    def lazy_costs(self, offsets, ports, out):
        return self._costs(offsets, ports, out)

    def lazy_chain_cost(self, positions, item_at, offset_of, ports):
        return self._chain(positions, item_at, offset_of, ports)

    def lazy_merge_cost(self, base, skip, add, item_at, offset_of, ports):
        return self._merge(base, skip, add, item_at, offset_of, ports)


class _CcImpl:
    """ctypes bindings over the cc-compiled shared library."""

    def __init__(self, library_path: Path) -> None:
        import ctypes

        lib = ctypes.CDLL(str(library_path))
        i64 = ctypes.c_int64
        ptr = ctypes.c_void_p
        lib.repro_lazy_costs.restype = i64
        lib.repro_lazy_costs.argtypes = [ptr, i64, ptr, i64, ptr]
        lib.repro_lazy_chain_cost.restype = i64
        lib.repro_lazy_chain_cost.argtypes = [ptr, i64, ptr, ptr, ptr, i64]
        lib.repro_lazy_merge_cost.restype = i64
        lib.repro_lazy_merge_cost.argtypes = [
            ptr, i64, ptr, i64, ptr, i64, ptr, ptr, ptr, i64,
        ]
        self._lib = lib
        self.library_path = library_path

    def lazy_costs(self, offsets, ports, out):
        return self._lib.repro_lazy_costs(
            offsets.ctypes.data,
            offsets.size,
            ports.ctypes.data,
            ports.size,
            out.ctypes.data,
        )

    def lazy_chain_cost(self, positions, item_at, offset_of, ports):
        return self._lib.repro_lazy_chain_cost(
            positions.ctypes.data,
            positions.size,
            item_at.ctypes.data,
            offset_of.ctypes.data,
            ports.ctypes.data,
            ports.size,
        )

    def lazy_merge_cost(self, base, skip, add, item_at, offset_of, ports):
        return self._lib.repro_lazy_merge_cost(
            base.ctypes.data,
            base.size,
            skip.ctypes.data,
            skip.size,
            add.ctypes.data,
            add.size,
            item_at.ctypes.data,
            offset_of.ctypes.data,
            ports.ctypes.data,
            ports.size,
        )


def _kernel_cache_dir() -> Path:
    override = os.environ.get(KERNEL_CACHE_ENV, "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-dwm" / "kernels"


def _find_compiler() -> str | None:
    import shutil

    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_cc_library() -> Path | None:
    """Compile the embedded C source into a hash-cached ``.so``."""
    compiler = _find_compiler()
    if compiler is None:
        return None
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    cache_dir = _kernel_cache_dir()
    library = cache_dir / f"lazykern_{digest}.so"
    if library.exists():
        return library
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache_dir) as tmp:
            source = Path(tmp) / "lazykern.c"
            source.write_text(_C_SOURCE, encoding="utf-8")
            artifact = Path(tmp) / "lazykern.so"
            proc = subprocess.run(
                [
                    compiler,
                    "-O3",
                    "-shared",
                    "-fPIC",
                    "-o",
                    str(artifact),
                    str(source),
                ],
                capture_output=True,
                timeout=120,
            )
            if proc.returncode != 0:
                return None
            # Atomic publish: concurrent builders race benignly.
            os.replace(artifact, library)
    except (OSError, subprocess.SubprocessError):
        return None
    return library


_LOCK = threading.Lock()
_BACKEND: CompiledKernels | None = None
_BACKEND_NAME: str | None = None
_SELECTION_NOTE = ""


def _select() -> tuple[CompiledKernels | None, str, str]:
    """Resolve (backend, name, note) from the environment."""
    if os.environ.get(NO_NUMBA_ENV, "").strip():
        return None, "numpy", f"{NO_NUMBA_ENV} set: forcing numpy fallback"
    requested = os.environ.get(KERNEL_ENV, "auto").strip().lower() or "auto"
    if requested not in ("auto", "numba", "cc", "numpy"):
        return None, "numpy", f"unknown {KERNEL_ENV}={requested!r}"
    if requested == "numpy":
        return None, "numpy", f"{KERNEL_ENV}=numpy"
    note = ""
    if requested in ("auto", "numba"):
        try:
            import numba  # noqa: F401

            return CompiledKernels("numba", _NumbaImpl(numba)), "numba", ""
        except Exception as exc:  # noqa: BLE001 - any failure falls through
            note = f"numba unavailable ({type(exc).__name__})"
            if requested == "numba":
                return None, "numpy", note
    library = _build_cc_library()
    if library is not None:
        try:
            return CompiledKernels("cc", _CcImpl(library)), "cc", note
        except OSError as exc:
            note = f"{note}; cc load failed: {exc}".strip("; ")
    else:
        note = f"{note}; no C compiler or compile failed".strip("; ")
    return None, "numpy", note


def compiled() -> CompiledKernels | None:
    """The active compiled backend, or ``None`` (numpy fallback).

    Resolved once per process on first call (thread-safe); use
    :func:`reset_backend` after changing the environment knobs.
    """
    global _BACKEND, _BACKEND_NAME, _SELECTION_NOTE
    if _BACKEND_NAME is None:
        with _LOCK:
            if _BACKEND_NAME is None:
                try:
                    from repro.chaos import failpoint

                    failpoint("kernel.compile")
                    backend, name, note = _select()
                except Exception as exc:  # noqa: BLE001 - degrade to numpy
                    from repro.robust import is_recoverable, record_degradation

                    if not is_recoverable(exc):
                        raise
                    backend, name = None, "numpy"
                    note = (
                        f"kernel selection failed "
                        f"({type(exc).__name__}: {exc})"
                    )
                    record_degradation(
                        "kernel", "compiled", "numpy", note, warn=False
                    )
                _BACKEND = backend
                _SELECTION_NOTE = note
                from repro.obs import get_registry

                get_registry().inc("kernel.selected", backend=name)
                _BACKEND_NAME = name
    return _BACKEND


def backend_name() -> str:
    """Active backend name: ``numba``, ``cc`` or ``numpy``."""
    compiled()
    return _BACKEND_NAME or "numpy"


def reset_backend() -> None:
    """Forget the resolved backend (test hook; next call re-selects)."""
    global _BACKEND, _BACKEND_NAME, _SELECTION_NOTE
    with _LOCK:
        _BACKEND = None
        _BACKEND_NAME = None
        _SELECTION_NOTE = ""


def describe() -> dict:
    """Backend diagnostics for ``repro kernels`` / benchmarks."""
    backend = compiled()
    info: dict = {
        "backend": backend_name(),
        "compiled": backend is not None,
        "requested": os.environ.get(KERNEL_ENV, "auto") or "auto",
        "no_numba": bool(os.environ.get(NO_NUMBA_ENV, "").strip()),
        "compiler": _find_compiler(),
        "cache_dir": str(_kernel_cache_dir()),
    }
    if _SELECTION_NOTE:
        info["note"] = _SELECTION_NOTE
    if backend is not None and isinstance(backend._impl, _CcImpl):
        info["library"] = str(backend._impl.library_path)
    return info
