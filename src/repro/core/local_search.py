"""Local-search refinement of placements (true-trace-cost objective).

Used both as the "+refinement" ablation arm (E10) and as a general-purpose
polish pass.  All moves are scored with the exact evaluator
(:func:`repro.core.cost.evaluate_placement`), so refinement can only ever
improve the real objective; an ``max_evaluations`` budget keeps runtime
bounded on large traces.

* :func:`swap_refinement` — first-improvement hill climbing over pairwise
  item-slot swaps (including cross-DBC swaps) and moves to free slots.
* :func:`two_opt_refinement` — segment reversal within each DBC's occupied
  offsets (the classical 2-opt move for linear arrangements).
* :func:`simulated_annealing` — seeded SA over the same move set for harder
  instances; accepts uphill moves with Metropolis probability.
"""

from __future__ import annotations

import math
import random

from repro.core.cost import evaluate_placement
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.errors import OptimizationError


def _free_slots(placement: Placement, problem: PlacementProblem) -> list[Slot]:
    """Unoccupied slots on DBCs that already hold items (cheap move targets)."""
    config = problem.config
    occupied = {slot for _, slot in placement.items()}
    free: list[Slot] = []
    for dbc in placement.dbcs_used():
        for offset in range(config.words_per_dbc):
            slot = Slot(dbc, offset)
            if slot not in occupied:
                free.append(slot)
    return free


def swap_refinement(
    problem: PlacementProblem,
    placement: Placement,
    max_passes: int = 3,
    max_evaluations: int = 20000,
) -> Placement:
    """First-improvement hill climbing over swaps and free-slot moves."""
    best = placement
    best_cost = evaluate_placement(problem, best)
    evaluations = 1
    items = list(problem.items)
    for _ in range(max_passes):
        improved = False
        for i, item_a in enumerate(items):
            for item_b in items[i + 1 :]:
                if evaluations >= max_evaluations:
                    return best
                candidate = best.with_swapped(item_a, item_b)
                cost = evaluate_placement(problem, candidate, validate=False)
                evaluations += 1
                if cost < best_cost:
                    best, best_cost = candidate, cost
                    improved = True
        for item in items:
            for slot in _free_slots(best, problem):
                if evaluations >= max_evaluations:
                    return best
                candidate = best.with_moved(item, slot)
                cost = evaluate_placement(problem, candidate, validate=False)
                evaluations += 1
                if cost < best_cost:
                    best, best_cost = candidate, cost
                    improved = True
        if not improved:
            break
    return best


def two_opt_refinement(
    problem: PlacementProblem,
    placement: Placement,
    max_passes: int = 3,
    max_evaluations: int = 20000,
) -> Placement:
    """Segment-reversal (2-opt) refinement within each DBC."""
    best = placement
    best_cost = evaluate_placement(problem, best)
    evaluations = 1
    for _ in range(max_passes):
        improved = False
        for dbc in best.dbcs_used():
            contents = best.dbc_contents(dbc)
            offsets = sorted(contents)
            for i in range(len(offsets)):
                for j in range(i + 1, len(offsets)):
                    if evaluations >= max_evaluations:
                        return best
                    # Reverse the occupied segment offsets[i..j].
                    segment = offsets[i : j + 1]
                    mapping = dict(best.as_dict())
                    for source, target in zip(segment, reversed(segment)):
                        mapping[contents[source]] = (dbc, target)
                    candidate = Placement(
                        {item: Slot(*slot) for item, slot in mapping.items()}
                    )
                    cost = evaluate_placement(problem, candidate, validate=False)
                    evaluations += 1
                    if cost < best_cost:
                        best, best_cost = candidate, cost
                        contents = best.dbc_contents(dbc)
                        improved = True
        if not improved:
            break
    return best


def simulated_annealing(
    problem: PlacementProblem,
    placement: Placement,
    seed: int = 0,
    initial_temperature: float | None = None,
    cooling: float = 0.95,
    steps_per_temperature: int = 50,
    min_temperature: float = 0.01,
    max_evaluations: int = 50000,
) -> Placement:
    """Seeded simulated annealing over swaps and free-slot moves.

    ``initial_temperature`` defaults to 5% of the starting cost so the
    schedule adapts to instance scale.  Deterministic given ``seed``.
    """
    if not 0.0 < cooling < 1.0:
        raise OptimizationError(f"cooling must be in (0, 1), got {cooling}")
    rng = random.Random(seed)
    current = placement
    current_cost = evaluate_placement(problem, current)
    best, best_cost = current, current_cost
    temperature = initial_temperature or max(1.0, 0.05 * current_cost)
    evaluations = 1
    items = list(problem.items)
    if len(items) < 2:
        return placement
    while temperature > min_temperature and evaluations < max_evaluations:
        for _ in range(steps_per_temperature):
            if evaluations >= max_evaluations:
                break
            if rng.random() < 0.7 or len(items) < 2:
                item_a, item_b = rng.sample(items, 2)
                candidate = current.with_swapped(item_a, item_b)
            else:
                free = _free_slots(current, problem)
                if not free:
                    item_a, item_b = rng.sample(items, 2)
                    candidate = current.with_swapped(item_a, item_b)
                else:
                    candidate = current.with_moved(
                        rng.choice(items), rng.choice(free)
                    )
            cost = evaluate_placement(problem, candidate, validate=False)
            evaluations += 1
            delta = cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current, current_cost = candidate, cost
                if cost < best_cost:
                    best, best_cost = candidate, cost
        temperature *= cooling
    return best
