"""Local-search refinement of placements (true-trace-cost objective).

Used both as the "+refinement" ablation arm (E10) and as a general-purpose
polish pass.  All moves are scored exactly, via the incremental delta engine
(:class:`repro.core.incremental.CostEvaluator`): a candidate costs
O(touched accesses) instead of a full O(trace) re-evaluation, so the same
``max_evaluations`` budget explores the same neighbourhood an order of
magnitude faster (E18).  Candidate enumeration, acceptance rules, and seeded
randomness are unchanged from the full-re-evaluation implementation, so
results are bit-identical; refinement can only ever improve the real
objective.

* :func:`swap_refinement` — first-improvement hill climbing over pairwise
  item-slot swaps (including cross-DBC swaps) and moves to free slots.
* :func:`two_opt_refinement` — segment reversal within each DBC's occupied
  offsets (the classical 2-opt move for linear arrangements).
* :func:`simulated_annealing` — seeded SA over the same move set for harder
  instances; accepts uphill moves with Metropolis probability.
"""

from __future__ import annotations

import math
import random

from repro.core.incremental import CostEvaluator
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.errors import OptimizationError


def _free_slots(placement: Placement, problem: PlacementProblem) -> list[Slot]:
    """Unoccupied slots on DBCs that already hold items (cheap move targets)."""
    config = problem.config
    occupied = {slot for _, slot in placement.items()}
    free: list[Slot] = []
    for dbc in placement.dbcs_used():
        for offset in range(config.words_per_dbc):
            slot = Slot(dbc, offset)
            if slot not in occupied:
                free.append(slot)
    return free


def swap_refinement(
    problem: PlacementProblem,
    placement: Placement,
    max_passes: int = 3,
    max_evaluations: int = 20000,
) -> Placement:
    """First-improvement hill climbing over swaps and free-slot moves."""
    evaluator = CostEvaluator(problem, placement)
    evaluations = 1
    items = list(problem.items)
    # The free-slot list only changes when a move (not a swap) is accepted;
    # hoisted out of the candidate loops and invalidated on acceptance.
    free_slots = evaluator.free_slots()
    free_dirty = False
    for _ in range(max_passes):
        improved = False
        for i, item_a in enumerate(items):
            for item_b in items[i + 1 :]:
                if evaluations >= max_evaluations:
                    return evaluator.placement()
                delta = evaluator.swap_delta(item_a, item_b)
                evaluations += 1
                if delta < 0:
                    evaluator.apply_swap(item_a, item_b)
                    improved = True
        for item in items:
            if free_dirty:
                free_slots = evaluator.free_slots()
                free_dirty = False
            for slot in free_slots:
                if evaluations >= max_evaluations:
                    return evaluator.placement()
                delta = evaluator.move_delta(item, slot)
                evaluations += 1
                if delta < 0:
                    evaluator.apply_move(item, slot)
                    improved = True
                    # Finish scanning the current snapshot (the remaining
                    # slots are still free), then refresh for the next item.
                    free_dirty = True
        if not improved:
            break
    return evaluator.placement()


def two_opt_refinement(
    problem: PlacementProblem,
    placement: Placement,
    max_passes: int = 3,
    max_evaluations: int = 20000,
) -> Placement:
    """Segment-reversal (2-opt) refinement within each DBC."""
    evaluator = CostEvaluator(problem, placement)
    evaluations = 1
    for _ in range(max_passes):
        improved = False
        for dbc in evaluator.dbcs_used():
            contents = evaluator.dbc_contents(dbc)
            offsets = sorted(contents)
            for i in range(len(offsets)):
                for j in range(i + 1, len(offsets)):
                    if evaluations >= max_evaluations:
                        return evaluator.placement()
                    # Reverse the occupied segment offsets[i..j].
                    segment = offsets[i : j + 1]
                    delta = evaluator.reversal_delta(dbc, segment)
                    evaluations += 1
                    if delta < 0:
                        evaluator.apply_reversal(dbc, segment)
                        improved = True
        if not improved:
            break
    return evaluator.placement()


def simulated_annealing(
    problem: PlacementProblem,
    placement: Placement,
    seed: int = 0,
    initial_temperature: float | None = None,
    cooling: float = 0.95,
    steps_per_temperature: int = 50,
    min_temperature: float = 0.01,
    max_evaluations: int = 50000,
) -> Placement:
    """Seeded simulated annealing over swaps and free-slot moves.

    ``initial_temperature`` defaults to 5% of the starting cost so the
    schedule adapts to instance scale.  Deterministic given ``seed`` (the
    random-number consumption pattern of the original full-re-evaluation
    implementation is preserved exactly).
    """
    if not 0.0 < cooling < 1.0:
        raise OptimizationError(f"cooling must be in (0, 1), got {cooling}")
    rng = random.Random(seed)
    evaluator = CostEvaluator(problem, placement)
    current_cost = evaluator.total
    best, best_cost = placement, current_cost
    temperature = initial_temperature or max(1.0, 0.05 * current_cost)
    evaluations = 1
    items = list(problem.items)
    if len(items) < 2:
        return placement
    # Cached free-slot list, refreshed only after an accepted move changes
    # the occupancy (swaps never do).
    free_slots: list[Slot] | None = None
    while temperature > min_temperature and evaluations < max_evaluations:
        for _ in range(steps_per_temperature):
            if evaluations >= max_evaluations:
                break
            move: tuple
            if rng.random() < 0.7 or len(items) < 2:
                item_a, item_b = rng.sample(items, 2)
                move = ("swap", item_a, item_b)
                delta = evaluator.swap_delta(item_a, item_b)
            else:
                if free_slots is None:
                    free_slots = evaluator.free_slots()
                if not free_slots:
                    item_a, item_b = rng.sample(items, 2)
                    move = ("swap", item_a, item_b)
                    delta = evaluator.swap_delta(item_a, item_b)
                else:
                    item = rng.choice(items)
                    slot = rng.choice(free_slots)
                    move = ("move", item, slot)
                    delta = evaluator.move_delta(item, slot)
            evaluations += 1
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                if move[0] == "swap":
                    evaluator.apply_swap(move[1], move[2])
                else:
                    evaluator.apply_move(move[1], move[2])
                    free_slots = None
                current_cost += delta
                if current_cost < best_cost:
                    best_cost = current_cost
                    best = evaluator.placement()
        temperature *= cooling
    return best
