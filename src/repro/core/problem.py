"""The placement problem: trace + geometry, with cached derived structures.

:class:`PlacementProblem` bundles everything an algorithm needs — the access
trace, the DWM geometry, the affinity graph, item frequencies — behind one
object so the individual optimizers stay small.  Construction validates that
the trace fits the configured array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.dwm.config import DWMConfig
from repro.errors import CapacityError, TraceError
from repro.trace.model import AccessTrace
from repro.trace.stats import AffinityMatrix, affinity_graph, hot_items


@dataclass(frozen=True)
class PlacementProblem:
    """An instance of the shift-minimizing data placement problem."""

    trace: AccessTrace
    config: DWMConfig

    def __post_init__(self) -> None:
        if len(self.trace) == 0:
            raise TraceError("cannot build a placement problem from an empty trace")
        if self.trace.num_items > self.config.capacity_words:
            raise CapacityError(
                f"trace {self.trace.name!r} touches {self.trace.num_items} items "
                f"but the array holds only {self.config.capacity_words} words "
                f"({self.config.describe()})"
            )

    # ------------------------------------------------------------------
    # Cached derived structures
    # ------------------------------------------------------------------
    @cached_property
    def items(self) -> tuple[str, ...]:
        """Items in first-touch (declaration) order."""
        return self.trace.items

    @property
    def num_items(self) -> int:
        return len(self.items)

    @cached_property
    def affinity(self) -> dict[tuple[str, str], int]:
        """Unordered adjacent-pair counts (self-pairs excluded)."""
        return affinity_graph(self.trace)

    @cached_property
    def affinity_matrix(self) -> AffinityMatrix:
        """Index-based affinity representation for numeric algorithms."""
        return AffinityMatrix.from_trace(self.trace)

    @cached_property
    def hot_order(self) -> tuple[str, ...]:
        """Items by descending access frequency."""
        return tuple(hot_items(self.trace))

    @cached_property
    def item_index(self) -> dict[str, int]:
        """Item name → dense index (first-touch order)."""
        return {item: i for i, item in enumerate(self.items)}

    @cached_property
    def index_sequence(self) -> tuple[int, ...]:
        """The trace as dense item indices (hot path for evaluators)."""
        index = self.item_index
        return tuple(index[access.item] for access in self.trace)

    @property
    def min_dbcs_needed(self) -> int:
        """Fewest DBCs that can hold all items."""
        length = self.config.words_per_dbc
        return -(-self.num_items // length)

    def with_config(self, config: DWMConfig) -> "PlacementProblem":
        """Same trace on a different geometry (used by parameter sweeps)."""
        return PlacementProblem(trace=self.trace, config=config)


@dataclass(frozen=True)
class PlacementResult:
    """An algorithm's output: the placement plus evaluation bookkeeping."""

    method: str
    placement: "Placement"  # noqa: F821 - forward ref, avoids import cycle
    total_shifts: int
    runtime_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def shifts_per_access(self) -> float:
        """Average shifts per access given the problem recorded in details."""
        accesses = self.details.get("num_accesses")
        if not accesses:
            return float("nan")
        return self.total_shifts / accesses

    def normalized_to(self, baseline: "PlacementResult") -> float:
        """This result's shift count relative to a baseline's (lower=better)."""
        if baseline.total_shifts == 0:
            return 0.0 if self.total_shifts == 0 else float("inf")
        return self.total_shifts / baseline.total_shifts
