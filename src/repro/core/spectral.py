"""Spectral sequencing comparator (Fiedler-vector ordering).

A literature-standard polynomial heuristic for Minimum Linear Arrangement:
sort items by their component in the second-smallest eigenvector of the
affinity graph's Laplacian.  Included as an additional comparison point for
the main-result experiment — the paper's greedy heuristic should match or
beat it at far lower cost.

Disconnected affinity graphs are handled per connected component (components
are concatenated by decreasing total access weight), and items that never
neighbour anything keep first-touch order at the tail.
"""

from __future__ import annotations

from repro.core.ordering import anchored_offsets
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem


def _connected_components(
    items: tuple[str, ...],
    affinity: dict[tuple[str, str], int],
) -> list[list[str]]:
    """Connected components of the affinity graph, first-touch ordered."""
    neighbors: dict[str, set[str]] = {item: set() for item in items}
    for (left, right), _weight in affinity.items():
        if left != right and left in neighbors and right in neighbors:
            neighbors[left].add(right)
            neighbors[right].add(left)
    seen: set[str] = set()
    components: list[list[str]] = []
    for item in items:
        if item in seen:
            continue
        stack = [item]
        component = []
        seen.add(item)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in neighbors[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(component)
    return components


def fiedler_order(
    items: list[str],
    affinity: dict[tuple[str, str], int],
) -> list[str]:
    """Order one connected component by its Fiedler vector."""
    import numpy as np

    n = len(items)
    if n <= 2:
        return list(items)
    index = {item: i for i, item in enumerate(items)}
    weights = np.zeros((n, n))
    for (left, right), weight in affinity.items():
        if left in index and right in index and left != right:
            i, j = index[left], index[right]
            weights[i, j] += weight
            weights[j, i] += weight
    laplacian = np.diag(weights.sum(axis=1)) - weights
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    # Second-smallest eigenvalue's eigenvector (Fiedler vector).
    fiedler = eigenvectors[:, 1]
    ranked = sorted(range(n), key=lambda i: (fiedler[i], i))
    return [items[i] for i in ranked]


def spectral_placement(problem: PlacementProblem) -> Placement:
    """Spectral ordering split into contiguous DBC-sized chunks.

    The global spectral order keeps affine items adjacent, so cutting it into
    blocks of ``L`` doubles as a (weak) grouping; each block is port-anchored
    like the heuristic's chains.
    """
    frequencies = dict(problem.trace.frequencies())
    components = _connected_components(problem.items, problem.affinity)
    components.sort(
        key=lambda component: -sum(frequencies.get(item, 0) for item in component)
    )
    order: list[str] = []
    for component in components:
        order.extend(fiedler_order(component, problem.affinity))
    length = problem.config.words_per_dbc
    mapping: dict[str, Slot] = {}
    for dbc, start in enumerate(range(0, len(order), length)):
        block = order[start : start + length]
        offsets = anchored_offsets(block, problem.config, frequencies)
        for item, offset in offsets.items():
            mapping[item] = Slot(dbc, offset)
    return Placement(mapping)
