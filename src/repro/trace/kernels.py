"""Instrumented benchmark kernels (DSPstone / MiBench stand-ins).

The published evaluation used memory traces of embedded benchmark binaries.
We cannot ship those traces, so each kernel here *executes the real
algorithm* over traced arrays (:class:`~repro.trace.model.TracedArray`),
producing a genuine word-granularity access sequence with the same structure
(streaming, strided, butterfly, data-dependent control flow) that drives
shift costs on a DWM scratchpad.  Functional outputs are also returned so
tests can assert the kernels compute correctly — the traces are real
executions, not synthetic approximations.

Every kernel function accepts a ``seed`` (for input data) and size
parameters with defaults chosen so the default suite finishes in seconds.
The registry :data:`KERNELS` and :func:`benchmark_suite` expose the full set
used by experiments E1–E10.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from repro.errors import TraceError
from repro.trace.model import AccessTrace, TracedArray, TracedScalar, TraceRecorder


class TracedMatrix:
    """Row-major 2-D view over a :class:`TracedArray`."""

    def __init__(self, name: str, rows: int, cols: int, values, recorder: TraceRecorder):
        values = list(values)
        if len(values) != rows * cols:
            raise TraceError(
                f"matrix {name}: expected {rows * cols} values, got {len(values)}"
            )
        self.rows = rows
        self.cols = cols
        self._array = TracedArray(name, values, recorder)

    def get(self, row: int, col: int):
        return self._array[row * self.cols + col]

    def set(self, row: int, col: int, value) -> None:
        self._array[row * self.cols + col] = value

    def snapshot(self) -> list:
        return self._array.snapshot()


def _rand_values(count: int, seed: int, lo: float = -1.0, hi: float = 1.0) -> list[float]:
    rng = random.Random(seed)
    return [rng.uniform(lo, hi) for _ in range(count)]


def _rand_ints(count: int, seed: int, lo: int = 0, hi: int = 255) -> list[int]:
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(count)]


# ---------------------------------------------------------------------------
# DSP kernels
# ---------------------------------------------------------------------------

def fir_trace(taps: int = 16, samples: int = 48, seed: int = 1) -> AccessTrace:
    """FIR filter: delay-line convolution, the classic DSPstone kernel."""
    recorder = TraceRecorder()
    coeffs = TracedArray("h", _rand_values(taps, seed), recorder)
    delay = TracedArray("d", [0.0] * taps, recorder)
    output = TracedArray("y", [0.0] * samples, recorder)
    inputs = _rand_values(samples, seed + 1)
    for n, sample in enumerate(inputs):
        # Shift delay line (newest at index 0).
        for k in range(taps - 1, 0, -1):
            delay[k] = delay[k - 1]
        delay[0] = sample
        acc = 0.0
        for k in range(taps):
            acc += coeffs[k] * delay[k]
        output[n] = acc
    trace = recorder.to_trace(
        "fir", metadata={"taps": taps, "samples": samples, "seed": seed}
    )
    trace.metadata["result"] = output.snapshot()
    return trace


def iir_trace(sections: int = 4, samples: int = 48, seed: int = 2) -> AccessTrace:
    """Cascaded biquad IIR filter (direct form II)."""
    recorder = TraceRecorder()
    # Stable-ish coefficients per section: b0..b2, a1..a2 (a0 = 1).
    coeffs = TracedArray(
        "c", _rand_values(5 * sections, seed, -0.4, 0.4), recorder
    )
    state = TracedArray("w", [0.0] * (2 * sections), recorder)
    output = TracedArray("y", [0.0] * samples, recorder)
    inputs = _rand_values(samples, seed + 1)
    for n, sample in enumerate(inputs):
        x = sample
        for s in range(sections):
            b0 = coeffs[5 * s]
            b1 = coeffs[5 * s + 1]
            b2 = coeffs[5 * s + 2]
            a1 = coeffs[5 * s + 3]
            a2 = coeffs[5 * s + 4]
            w1 = state[2 * s]
            w2 = state[2 * s + 1]
            w0 = x - a1 * w1 - a2 * w2
            x = b0 * w0 + b1 * w1 + b2 * w2
            state[2 * s + 1] = w1
            state[2 * s] = w0
        output[n] = x
    trace = recorder.to_trace(
        "iir", metadata={"sections": sections, "samples": samples, "seed": seed}
    )
    trace.metadata["result"] = output.snapshot()
    return trace


def matmul_trace(size: int = 6, seed: int = 3) -> AccessTrace:
    """Dense matrix multiply C = A x B (ijk order)."""
    recorder = TraceRecorder()
    a = TracedMatrix("A", size, size, _rand_values(size * size, seed), recorder)
    b = TracedMatrix("B", size, size, _rand_values(size * size, seed + 1), recorder)
    c = TracedMatrix("C", size, size, [0.0] * (size * size), recorder)
    for i in range(size):
        for j in range(size):
            acc = 0.0
            for k in range(size):
                acc += a.get(i, k) * b.get(k, j)
            c.set(i, j, acc)
    trace = recorder.to_trace("matmul", metadata={"size": size, "seed": seed})
    trace.metadata["result"] = c.snapshot()
    return trace


def fft_trace(size: int = 32, seed: int = 4) -> AccessTrace:
    """Iterative radix-2 FFT over separate real/imag arrays."""
    if size & (size - 1) or size < 2:
        raise TraceError(f"fft size must be a power of two >= 2, got {size}")
    recorder = TraceRecorder()
    real = TracedArray("re", _rand_values(size, seed), recorder)
    imag = TracedArray("im", [0.0] * size, recorder)
    # Bit-reversal permutation.
    bits = size.bit_length() - 1
    for i in range(size):
        j = int(format(i, f"0{bits}b")[::-1], 2)
        if i < j:
            ri, rj = real[i], real[j]
            real[i], real[j] = rj, ri
            ii, ij = imag[i], imag[j]
            imag[i], imag[j] = ij, ii
    # Butterflies.
    span = 2
    while span <= size:
        half = span // 2
        step = -2.0 * math.pi / span
        for start in range(0, size, span):
            for k in range(half):
                angle = step * k
                wr, wi = math.cos(angle), math.sin(angle)
                i0 = start + k
                i1 = start + k + half
                tr = wr * real[i1] - wi * imag[i1]
                ti = wr * imag[i1] + wi * real[i1]
                ur, ui = real[i0], imag[i0]
                real[i0] = ur + tr
                imag[i0] = ui + ti
                real[i1] = ur - tr
                imag[i1] = ui - ti
        span *= 2
    trace = recorder.to_trace("fft", metadata={"size": size, "seed": seed})
    trace.metadata["result"] = (real.snapshot(), imag.snapshot())
    return trace


def dct8x8_trace(blocks: int = 3, seed: int = 5) -> AccessTrace:
    """JPEG-style 8x8 2-D DCT over a sequence of blocks (row-column method)."""
    recorder = TraceRecorder()
    n = 8
    results = []
    cos_table = TracedMatrix(
        "ct",
        n,
        n,
        [
            math.cos((2 * x + 1) * u * math.pi / (2 * n))
            for u in range(n)
            for x in range(n)
        ],
        recorder,
    )
    for block_index in range(blocks):
        block = TracedMatrix(
            f"blk{block_index}",
            n,
            n,
            _rand_values(n * n, seed + block_index, 0.0, 255.0),
            recorder,
        )
        temp = TracedMatrix(f"tmp{block_index}", n, n, [0.0] * (n * n), recorder)
        out = TracedMatrix(f"out{block_index}", n, n, [0.0] * (n * n), recorder)
        # Rows.
        for r in range(n):
            for u in range(n):
                acc = 0.0
                for x in range(n):
                    acc += block.get(r, x) * cos_table.get(u, x)
                temp.set(r, u, acc)
        # Columns.
        for u in range(n):
            for v in range(n):
                acc = 0.0
                for y in range(n):
                    acc += temp.get(y, v) * cos_table.get(u, y)
                out.set(u, v, acc)
        results.append(out.snapshot())
    trace = recorder.to_trace("dct8x8", metadata={"blocks": blocks, "seed": seed})
    trace.metadata["result"] = results
    return trace


def lms_trace(taps: int = 8, samples: int = 72, seed: int = 6) -> AccessTrace:
    """LMS adaptive filter: FIR + coefficient update per sample."""
    recorder = TraceRecorder()
    weights = TracedArray("w", [0.0] * taps, recorder)
    delay = TracedArray("x", [0.0] * taps, recorder)
    errors = TracedArray("e", [0.0] * samples, recorder)
    rng = random.Random(seed)
    mu = 0.05
    for n in range(samples):
        sample = rng.uniform(-1, 1)
        desired = 0.7 * sample + rng.uniform(-0.05, 0.05)
        for k in range(taps - 1, 0, -1):
            delay[k] = delay[k - 1]
        delay[0] = sample
        estimate = 0.0
        for k in range(taps):
            estimate += weights[k] * delay[k]
        err = desired - estimate
        errors[n] = err
        for k in range(taps):
            weights[k] = weights[k] + mu * err * delay[k]
    trace = recorder.to_trace(
        "lms", metadata={"taps": taps, "samples": samples, "seed": seed}
    )
    trace.metadata["result"] = errors.snapshot()
    return trace


def conv2d_trace(image: int = 8, kernel: int = 3, seed: int = 7) -> AccessTrace:
    """2-D convolution of an image with a small kernel (valid padding)."""
    if kernel > image:
        raise TraceError("kernel must not exceed image size")
    recorder = TraceRecorder()
    img = TracedMatrix("img", image, image, _rand_values(image * image, seed), recorder)
    ker = TracedMatrix("ker", kernel, kernel, _rand_values(kernel * kernel, seed + 1), recorder)
    out_size = image - kernel + 1
    out = TracedMatrix("out", out_size, out_size, [0.0] * (out_size * out_size), recorder)
    for r in range(out_size):
        for c in range(out_size):
            acc = 0.0
            for kr in range(kernel):
                for kc in range(kernel):
                    acc += img.get(r + kr, c + kc) * ker.get(kr, kc)
            out.set(r, c, acc)
    trace = recorder.to_trace(
        "conv2d", metadata={"image": image, "kernel": kernel, "seed": seed}
    )
    trace.metadata["result"] = out.snapshot()
    return trace


# ---------------------------------------------------------------------------
# Control / integer kernels
# ---------------------------------------------------------------------------

def insertion_sort_trace(length: int = 24, seed: int = 8) -> AccessTrace:
    """Insertion sort — data-dependent, locality-heavy access pattern."""
    recorder = TraceRecorder()
    data = TracedArray("a", _rand_ints(length, seed), recorder)
    for i in range(1, length):
        key = data[i]
        j = i - 1
        while j >= 0 and data[j] > key:
            data[j + 1] = data[j]
            j -= 1
        data[j + 1] = key
    trace = recorder.to_trace(
        "insertion_sort", metadata={"length": length, "seed": seed}
    )
    trace.metadata["result"] = data.snapshot()
    return trace


def quicksort_trace(length: int = 32, seed: int = 9) -> AccessTrace:
    """In-place quicksort (Lomuto partition, iterative via explicit stack)."""
    recorder = TraceRecorder()
    data = TracedArray("a", _rand_ints(length, seed), recorder)
    stack = [(0, length - 1)]
    while stack:
        lo, hi = stack.pop()
        if lo >= hi:
            continue
        pivot = data[hi]
        i = lo - 1
        for j in range(lo, hi):
            if data[j] <= pivot:
                i += 1
                di, dj = data[i], data[j]
                data[i], data[j] = dj, di
        di, dh = data[i + 1], data[hi]
        data[i + 1], data[hi] = dh, di
        p = i + 1
        stack.append((lo, p - 1))
        stack.append((p + 1, hi))
    trace = recorder.to_trace("quicksort", metadata={"length": length, "seed": seed})
    trace.metadata["result"] = data.snapshot()
    return trace


def histogram_trace(bins: int = 16, samples: int = 192, seed: int = 10) -> AccessTrace:
    """Histogram of a random byte stream — scattered read-modify-writes."""
    recorder = TraceRecorder()
    hist = TracedArray("h", [0] * bins, recorder)
    stream = _rand_ints(samples, seed)
    for value in stream:
        bin_index = value % bins
        hist[bin_index] = hist[bin_index] + 1
    trace = recorder.to_trace(
        "histogram", metadata={"bins": bins, "samples": samples, "seed": seed}
    )
    trace.metadata["result"] = hist.snapshot()
    return trace


def kmp_trace(text_length: int = 160, pattern_length: int = 8, seed: int = 11) -> AccessTrace:
    """Knuth–Morris–Pratt string search (MiBench stringsearch stand-in)."""
    recorder = TraceRecorder()
    rng = random.Random(seed)
    alphabet = "ab"
    text_values = [rng.choice(alphabet) for _ in range(text_length)]
    # Plant the pattern so matches actually occur.
    pattern_values = [rng.choice(alphabet) for _ in range(pattern_length)]
    plant_at = text_length // 3
    text_values[plant_at : plant_at + pattern_length] = pattern_values
    text = TracedArray("t", text_values, recorder)
    pattern = TracedArray("p", pattern_values, recorder)
    failure = TracedArray("f", [0] * pattern_length, recorder)
    # Build failure function.
    k = 0
    for i in range(1, pattern_length):
        while k > 0 and pattern[k] != pattern[i]:
            k = failure[k - 1]
        if pattern[k] == pattern[i]:
            k += 1
        failure[i] = k
    # Search.
    matches = []
    k = 0
    for i in range(text_length):
        while k > 0 and pattern[k] != text[i]:
            k = failure[k - 1]
        if pattern[k] == text[i]:
            k += 1
        if k == pattern_length:
            matches.append(i - pattern_length + 1)
            k = failure[k - 1]
    trace = recorder.to_trace(
        "kmp",
        metadata={
            "text_length": text_length,
            "pattern_length": pattern_length,
            "seed": seed,
        },
    )
    trace.metadata["result"] = matches
    return trace


def dijkstra_trace(nodes: int = 12, seed: int = 12) -> AccessTrace:
    """Dijkstra shortest paths on a random connected graph (adjacency matrix)."""
    recorder = TraceRecorder()
    rng = random.Random(seed)
    inf = float("inf")
    weights = [[inf] * nodes for _ in range(nodes)]
    for i in range(nodes):
        weights[i][i] = 0.0
    # Ring for connectivity plus random chords.
    for i in range(nodes):
        j = (i + 1) % nodes
        w = rng.uniform(1, 10)
        weights[i][j] = min(weights[i][j], w)
        weights[j][i] = min(weights[j][i], w)
    for _ in range(nodes * 2):
        i, j = rng.randrange(nodes), rng.randrange(nodes)
        if i != j:
            w = rng.uniform(1, 10)
            weights[i][j] = min(weights[i][j], w)
            weights[j][i] = min(weights[j][i], w)
    adj = TracedMatrix(
        "adj", nodes, nodes, [weights[i][j] for i in range(nodes) for j in range(nodes)], recorder
    )
    dist = TracedArray("dist", [inf] * nodes, recorder)
    visited = TracedArray("vis", [0] * nodes, recorder)
    dist[0] = 0.0
    for _ in range(nodes):
        best, best_dist = -1, inf
        for v in range(nodes):
            if not visited[v]:
                dv = dist[v]
                if dv < best_dist:
                    best, best_dist = v, dv
        if best < 0:
            break
        visited[best] = 1
        for v in range(nodes):
            w = adj.get(best, v)
            if w < inf:
                candidate = best_dist + w
                if candidate < dist[v]:
                    dist[v] = candidate
    trace = recorder.to_trace("dijkstra", metadata={"nodes": nodes, "seed": seed})
    trace.metadata["result"] = dist.snapshot()
    return trace


def crc32_trace(num_bytes: int = 96, seed: int = 13) -> AccessTrace:
    """Nibble-table CRC32 over a random byte buffer (MiBench CRC stand-in)."""
    recorder = TraceRecorder()
    poly = 0xEDB88320
    table_values = []
    for nibble in range(16):
        crc = nibble
        for _ in range(4):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table_values.append(crc)
    table = TracedArray("tbl", table_values, recorder)
    buffer = TracedArray("buf", _rand_ints(num_bytes, seed), recorder)
    crc_var = TracedScalar("crc", 0xFFFFFFFF, recorder)
    for i in range(num_bytes):
        byte = buffer[i]
        crc = crc_var.get()
        crc = (crc >> 4) ^ table[(crc ^ byte) & 0xF]
        crc = (crc >> 4) ^ table[(crc ^ (byte >> 4)) & 0xF]
        crc_var.set(crc)
    final = crc_var.get() ^ 0xFFFFFFFF
    trace = recorder.to_trace(
        "crc32", metadata={"num_bytes": num_bytes, "seed": seed}
    )
    trace.metadata["result"] = final
    return trace


def viterbi_trace(states: int = 6, steps: int = 16, seed: int = 14) -> AccessTrace:
    """Viterbi decoding over a random HMM (trellis dynamic program).

    The classic telecom kernel: per step every state scans all predecessor
    states — a dense, regular trellis sweep with two alternating score rows.
    """
    recorder = TraceRecorder()
    rng = random.Random(seed)
    # Log-domain scores; random transition/emission tables.
    trans = TracedMatrix(
        "tr", states, states,
        [rng.uniform(-2.0, -0.1) for _ in range(states * states)], recorder,
    )
    emit = TracedMatrix(
        "em", states, steps,
        [rng.uniform(-2.0, -0.1) for _ in range(states * steps)], recorder,
    )
    prev = TracedArray("sp", [0.0] * states, recorder)
    curr = TracedArray("sc", [0.0] * states, recorder)
    back = TracedMatrix("bp", steps, states, [0] * (steps * states), recorder)
    for s in range(states):
        prev[s] = emit.get(s, 0)
    for t in range(1, steps):
        for s in range(states):
            best_score = None
            best_state = 0
            for p in range(states):
                score = prev[p] + trans.get(p, s)
                if best_score is None or score > best_score:
                    best_score = score
                    best_state = p
            curr[s] = best_score + emit.get(s, t)
            back.set(t, s, best_state)
        for s in range(states):
            prev[s] = curr[s]
    # Traceback.
    best_final = 0
    best_score = prev[0]
    for s in range(1, states):
        score = prev[s]
        if score > best_score:
            best_score = score
            best_final = s
    path = [best_final]
    for t in range(steps - 1, 0, -1):
        path.append(back.get(t, path[-1]))
    path.reverse()
    trace = recorder.to_trace(
        "viterbi", metadata={"states": states, "steps": steps, "seed": seed}
    )
    trace.metadata["result"] = path
    return trace


def bitonic_sort_trace(length: int = 16, seed: int = 15) -> AccessTrace:
    """Bitonic sorting network — data-independent compare-exchange pattern."""
    if length & (length - 1) or length < 2:
        raise TraceError(f"bitonic length must be a power of two >= 2, got {length}")
    recorder = TraceRecorder()
    data = TracedArray("a", _rand_ints(length, seed), recorder)
    k = 2
    while k <= length:
        j = k // 2
        while j >= 1:
            for i in range(length):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    left, right = data[i], data[partner]
                    low, high = min(left, right), max(left, right)
                    # Canonical network: both lanes are written every
                    # compare-exchange, so the access pattern is fully
                    # data-independent (as in the hardware realisation).
                    if ascending:
                        data[i], data[partner] = low, high
                    else:
                        data[i], data[partner] = high, low
            j //= 2
        k *= 2
    trace = recorder.to_trace(
        "bitonic_sort", metadata={"length": length, "seed": seed}
    )
    trace.metadata["result"] = data.snapshot()
    return trace


def transpose_trace(rows: int = 8, cols: int = 8, seed: int = 16) -> AccessTrace:
    """Out-of-place matrix transpose — row-major reads, column-major writes."""
    recorder = TraceRecorder()
    source = TracedMatrix(
        "src", rows, cols, _rand_values(rows * cols, seed), recorder
    )
    dest = TracedMatrix("dst", cols, rows, [0.0] * (rows * cols), recorder)
    for r in range(rows):
        for c in range(cols):
            dest.set(c, r, source.get(r, c))
    trace = recorder.to_trace(
        "transpose", metadata={"rows": rows, "cols": cols, "seed": seed}
    )
    trace.metadata["result"] = dest.snapshot()
    return trace


def spmv_trace(size: int = 16, density: float = 0.25, seed: int = 17) -> AccessTrace:
    """Sparse matrix-vector multiply (CSR) — irregular gather pattern."""
    if not 0.0 < density <= 1.0:
        raise TraceError(f"density must be in (0, 1], got {density}")
    recorder = TraceRecorder()
    rng = random.Random(seed)
    # Build a CSR matrix with at least one entry per row.
    values_list: list[float] = []
    columns_list: list[int] = []
    row_ptr_list = [0]
    for _row in range(size):
        cols_here = sorted(
            rng.sample(range(size), max(1, int(density * size)))
        )
        for col in cols_here:
            values_list.append(rng.uniform(-1, 1))
            columns_list.append(col)
        row_ptr_list.append(len(values_list))
    values = TracedArray("val", values_list, recorder)
    columns = TracedArray("col", columns_list, recorder)
    row_ptr = TracedArray("ptr", row_ptr_list, recorder)
    vector = TracedArray("x", _rand_values(size, seed + 1), recorder)
    output = TracedArray("y", [0.0] * size, recorder)
    for row in range(size):
        start = row_ptr[row]
        end = row_ptr[row + 1]
        acc = 0.0
        for entry in range(start, end):
            acc += values[entry] * vector[columns[entry]]
        output[row] = acc
    trace = recorder.to_trace(
        "spmv", metadata={"size": size, "density": density, "seed": seed}
    )
    trace.metadata["result"] = output.snapshot()
    trace.metadata["csr"] = (values_list, columns_list, row_ptr_list)
    return trace


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

KERNELS: dict[str, Callable[..., AccessTrace]] = {
    "fir": fir_trace,
    "iir": iir_trace,
    "matmul": matmul_trace,
    "fft": fft_trace,
    "dct8x8": dct8x8_trace,
    "lms": lms_trace,
    "conv2d": conv2d_trace,
    "insertion_sort": insertion_sort_trace,
    "quicksort": quicksort_trace,
    "histogram": histogram_trace,
    "kmp": kmp_trace,
    "dijkstra": dijkstra_trace,
    "crc32": crc32_trace,
    "viterbi": viterbi_trace,
    "bitonic_sort": bitonic_sort_trace,
    "transpose": transpose_trace,
    "spmv": spmv_trace,
}

#: The six locality-rich kernels used by the sensitivity sweeps (E4, E5, E10).
SWEEP_KERNELS = ("fir", "iir", "matmul", "fft", "lms", "insertion_sort")


def benchmark_suite(names: tuple[str, ...] | None = None) -> dict[str, AccessTrace]:
    """Generate the default trace for each named kernel (all by default)."""
    selected = names or tuple(KERNELS)
    traces: dict[str, AccessTrace] = {}
    for name in selected:
        if name not in KERNELS:
            raise TraceError(
                f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
            )
        traces[name] = KERNELS[name]()
    return traces
