"""Workload mixes: multiprogrammed traces sharing one scratchpad.

When several tasks time-share a core, their accesses interleave in the
shared SPM — which destroys the *adjacency* structure a single task's trace
has (a transition now usually crosses tasks), while each task's own
locality survives only in its restricted subsequence.  Placement grouping
handles exactly this (per-DBC decomposition), so mixes are the natural
stress test for the grouping phase.

* :func:`interleave` — round-robin or weighted deterministic interleave of
  namespaced traces (quantum = accesses per turn, modelling a scheduler
  timeslice at memory-access granularity);
* :func:`mix_suite` — ready-made two- and three-task mixes from the
  benchmark kernels.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TraceError
from repro.trace.model import Access, AccessTrace


def interleave(
    traces: Sequence[AccessTrace],
    quantum: int = 8,
    weights: Sequence[int] | None = None,
    name: str | None = None,
) -> AccessTrace:
    """Deterministically interleave traces with per-task timeslices.

    Task ``t`` receives ``weights[t]`` consecutive turns of ``quantum``
    accesses each per round (default: equal weights).  Item names are
    prefixed ``t<index>_`` so tasks never alias.  Tasks that run out simply
    drop out of the rotation; the result contains every access of every
    input exactly once.
    """
    if not traces:
        raise TraceError("interleave needs at least one trace")
    if quantum <= 0:
        raise TraceError(f"quantum must be positive, got {quantum}")
    if weights is None:
        weights = [1] * len(traces)
    if len(weights) != len(traces):
        raise TraceError("weights must match the number of traces")
    if any(weight <= 0 for weight in weights):
        raise TraceError("weights must be positive")
    streams = [
        [
            Access(f"t{index}_{access.item}", access.kind)
            for access in trace
        ]
        for index, trace in enumerate(traces)
    ]
    positions = [0] * len(streams)
    merged: list[Access] = []
    while any(position < len(stream) for position, stream in zip(positions, streams)):
        for index, stream in enumerate(streams):
            take = quantum * weights[index]
            start = positions[index]
            if start >= len(stream):
                continue
            end = min(len(stream), start + take)
            merged.extend(stream[start:end])
            positions[index] = end
    return AccessTrace(
        merged,
        name=name or ("mix(" + "+".join(t.name for t in traces) + ")"),
        metadata={"mix_quantum": quantum, "mix_tasks": len(traces)},
    )


def mix_suite(quantum: int = 8) -> dict[str, AccessTrace]:
    """Canonical multiprogrammed mixes built from the benchmark kernels."""
    from repro.trace.kernels import (
        crc32_trace,
        fir_trace,
        histogram_trace,
        matmul_trace,
    )

    fir = fir_trace(taps=8, samples=24)
    matmul = matmul_trace(size=4)
    histogram = histogram_trace(bins=8, samples=96)
    crc = crc32_trace(num_bytes=48)
    return {
        "fir+matmul": interleave([fir, matmul], quantum=quantum),
        "fir+crc32": interleave([fir, crc], quantum=quantum),
        "fir+matmul+histogram": interleave(
            [fir, matmul, histogram], quantum=quantum
        ),
    }
