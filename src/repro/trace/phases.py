"""Phase analysis of access traces.

Utilities for studying how a workload's behaviour changes over time — the
analysis that motivates online/adaptive placement (E13):

* :func:`windowed_working_sets` — distinct items per fixed-size window;
* :func:`phase_boundaries` — window indices where the working set turns
  over (Jaccard similarity between consecutive windows drops below a
  threshold);
* :func:`phase_summary` — per-phase sub-traces with their own statistics,
  ready to feed into per-phase placement studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.trace.model import AccessTrace


def windowed_working_sets(
    trace: AccessTrace, window: int = 256
) -> list[set[str]]:
    """Distinct items touched in each consecutive window of the trace.

    The final partial window is included (if non-empty).
    """
    if window <= 0:
        raise TraceError(f"window must be positive, got {window}")
    sets: list[set[str]] = []
    current: set[str] = set()
    for position, access in enumerate(trace):
        current.add(access.item)
        if (position + 1) % window == 0:
            sets.append(current)
            current = set()
    if current:
        sets.append(current)
    return sets


def jaccard(left: set[str], right: set[str]) -> float:
    """Jaccard similarity of two item sets (1.0 for two empty sets)."""
    if not left and not right:
        return 1.0
    union = left | right
    return len(left & right) / len(union)


def phase_boundaries(
    trace: AccessTrace,
    window: int = 256,
    threshold: float = 0.3,
) -> list[int]:
    """Access indices where the working set turns over.

    A boundary is reported at the start of window ``k`` when the Jaccard
    similarity between windows ``k-1`` and ``k`` falls below ``threshold``.
    """
    if not 0.0 <= threshold <= 1.0:
        raise TraceError(f"threshold must be in [0, 1], got {threshold}")
    sets = windowed_working_sets(trace, window)
    boundaries: list[int] = []
    for k in range(1, len(sets)):
        if jaccard(sets[k - 1], sets[k]) < threshold:
            boundaries.append(k * window)
    return boundaries


@dataclass(frozen=True)
class Phase:
    """One detected phase of a trace."""

    start: int
    end: int  # exclusive
    trace: AccessTrace

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def working_set_size(self) -> int:
        return self.trace.num_items


def phase_summary(
    trace: AccessTrace,
    window: int = 256,
    threshold: float = 0.3,
) -> list[Phase]:
    """Split the trace at detected boundaries into :class:`Phase` records."""
    boundaries = phase_boundaries(trace, window, threshold)
    edges = [0] + boundaries + [len(trace)]
    phases: list[Phase] = []
    for start, end in zip(edges, edges[1:]):
        if end <= start:
            continue
        phases.append(
            Phase(
                start=start,
                end=end,
                trace=trace[start:end].renamed(
                    f"{trace.name}|phase[{start}:{end}]"
                ),
            )
        )
    return phases


def phase_stability_score(
    trace: AccessTrace, window: int = 256
) -> float:
    """Mean Jaccard similarity of consecutive windows (1.0 = one phase).

    Low scores flag workloads where static profiling will decay and online
    placement is worth its migration costs.
    """
    sets = windowed_working_sets(trace, window)
    if len(sets) < 2:
        return 1.0
    similarities = [
        jaccard(sets[k - 1], sets[k]) for k in range(1, len(sets))
    ]
    return sum(similarities) / len(similarities)
