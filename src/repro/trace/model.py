"""Access-trace data model.

A trace is the input of the placement problem: an ordered sequence of word
accesses, each naming a logical *item* (a scalar variable or an array
element such as ``"A[3]"``) and whether it was a read or a write.  Traces are
produced by the synthetic generators (:mod:`repro.trace.synthetic`) or by the
instrumented benchmark kernels (:mod:`repro.trace.kernels`), and consumed by
the placement optimizers and the trace-driven simulator.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import TraceError


class AccessKind(enum.Enum):
    """Whether an access reads or writes its item."""

    READ = "R"
    WRITE = "W"

    @classmethod
    def parse(cls, value: "AccessKind | str") -> "AccessKind":
        """Coerce ``"R"``/``"W"`` (case-insensitive) to an enum member."""
        if isinstance(value, cls):
            return value
        text = str(value).strip().upper()
        if text in ("R", "READ"):
            return cls.READ
        if text in ("W", "WRITE"):
            return cls.WRITE
        raise TraceError(f"unknown access kind {value!r}")


@dataclass(frozen=True)
class Access:
    """One word access in a trace."""

    item: str
    kind: AccessKind = AccessKind.READ

    def __post_init__(self) -> None:
        if not self.item:
            raise TraceError("access item name must be non-empty")
        object.__setattr__(self, "kind", AccessKind.parse(self.kind))

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE

    def __str__(self) -> str:
        return f"{self.kind.value} {self.item}"


class AccessTrace:
    """An ordered sequence of :class:`Access` records.

    The trace also carries a ``name`` (used in reports) and optional
    free-form ``metadata`` (e.g. kernel parameters).  Traces are immutable
    once built; transformation methods return new traces.
    """

    def __init__(
        self,
        accesses: Iterable[Access | tuple | str],
        name: str = "trace",
        metadata: dict | None = None,
    ) -> None:
        records: list[Access] = []
        for entry in accesses:
            if isinstance(entry, Access):
                records.append(entry)
            elif isinstance(entry, str):
                records.append(Access(entry))
            elif isinstance(entry, (tuple, list)) and len(entry) == 2:
                records.append(Access(entry[0], AccessKind.parse(entry[1])))
            else:
                raise TraceError(f"cannot interpret trace entry {entry!r}")
        self._accesses: tuple[Access, ...] = tuple(records)
        self.name = name
        self.metadata = dict(metadata or {})
        self._items: tuple[str, ...] | None = None
        self._fingerprint: str | None = None
        self._resolved = None  # ResolvedTrace cache (repro.memory.batch_sim)

    def __getstate__(self):
        # The resolved-trace cache carries dense numpy arrays; shipping it
        # with every pickled trace would bloat worker task payloads, and
        # the receiving process re-resolves (or attaches) lazily anyway.
        state = dict(self.__dict__)
        state.pop("_resolved", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._resolved = None

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._accesses)

    def __iter__(self) -> Iterator[Access]:
        return iter(self._accesses)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return AccessTrace(
                self._accesses[index],
                name=f"{self.name}[{index.start}:{index.stop}]",
                metadata=self.metadata,
            )
        return self._accesses[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessTrace):
            return NotImplemented
        return self._accesses == other._accesses

    def __hash__(self) -> int:
        return hash(self._accesses)

    def __repr__(self) -> str:
        return (
            f"AccessTrace(name={self.name!r}, n_accesses={len(self)}, "
            f"n_items={self.num_items})"
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def items(self) -> tuple[str, ...]:
        """Distinct item names in first-touch order (declaration order)."""
        if self._items is None:
            seen: dict[str, None] = {}
            for access in self._accesses:
                if access.item not in seen:
                    seen[access.item] = None
            self._items = tuple(seen)
        return self._items

    @property
    def num_items(self) -> int:
        return len(self.items)

    @property
    def item_sequence(self) -> tuple[str, ...]:
        """Just the item names, in access order."""
        return tuple(access.item for access in self._accesses)

    def fingerprint(self) -> str:
        """Stable content hash of the access sequence (hex sha256).

        Covers only the accesses themselves — two traces with the same
        reads/writes hash identically even if ``name`` or ``metadata``
        differ, so renaming a trace does not invalidate cached results
        keyed on it.  Cached after the first call (traces are immutable).
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            for access in self._accesses:
                digest.update(access.kind.value.encode("ascii"))
                digest.update(access.item.encode("utf-8"))
                digest.update(b"\x00")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def frequencies(self) -> Counter:
        """Access count per item."""
        return Counter(access.item for access in self._accesses)

    def read_write_counts(self) -> tuple[int, int]:
        """Total (reads, writes) in the trace."""
        writes = sum(1 for access in self._accesses if access.is_write)
        return len(self._accesses) - writes, writes

    def adjacent_pairs(self) -> Iterator[tuple[str, str]]:
        """Consecutive item pairs (the raw input of the affinity graph).

        Self-pairs (two consecutive accesses to the same item) are included;
        affinity-graph builders typically skip them since they cost no shifts.
        """
        for left, right in zip(self._accesses, self._accesses[1:]):
            yield left.item, right.item

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def restricted_to(self, items: Iterable[str]) -> "AccessTrace":
        """Sub-trace containing only accesses to the given items, in order."""
        wanted = set(items)
        return AccessTrace(
            (a for a in self._accesses if a.item in wanted),
            name=f"{self.name}|restricted",
            metadata=self.metadata,
        )

    def truncated(self, max_accesses: int) -> "AccessTrace":
        """First ``max_accesses`` records (useful for OPT comparisons)."""
        if max_accesses < 0:
            raise TraceError(f"max_accesses must be >= 0, got {max_accesses}")
        return AccessTrace(
            self._accesses[:max_accesses],
            name=f"{self.name}|head{max_accesses}",
            metadata=self.metadata,
        )

    def top_items(self, count: int) -> "AccessTrace":
        """Restrict to the ``count`` most frequently accessed items."""
        if count <= 0:
            raise TraceError(f"count must be positive, got {count}")
        hottest = [item for item, _ in self.frequencies().most_common(count)]
        return self.restricted_to(hottest)

    def concatenated(self, other: "AccessTrace", name: str | None = None) -> "AccessTrace":
        """This trace followed by ``other``."""
        return AccessTrace(
            tuple(self._accesses) + tuple(other._accesses),
            name=name or f"{self.name}+{other.name}",
            metadata={**other.metadata, **self.metadata},
        )

    def renamed(self, name: str) -> "AccessTrace":
        """Copy with a different display name."""
        return AccessTrace(self._accesses, name=name, metadata=self.metadata)

    def prefixed(self, prefix: str) -> "AccessTrace":
        """Copy with every item name prefixed (disjoint namespaces).

        Used to combine traces whose item sets must not collide, e.g. when
        modelling program phases that touch different data.
        """
        return AccessTrace(
            (Access(prefix + access.item, access.kind) for access in self._accesses),
            name=f"{prefix}{self.name}",
            metadata=self.metadata,
        )

    @classmethod
    def from_items(
        cls,
        item_sequence: Sequence[str],
        name: str = "trace",
        metadata: dict | None = None,
    ) -> "AccessTrace":
        """Build a read-only trace from a bare item-name sequence."""
        return cls(
            (Access(item) for item in item_sequence),
            name=name,
            metadata=metadata,
        )

    @classmethod
    def _from_dense(
        cls,
        items: Sequence[str],
        item_at,
        is_write,
        name: str = "trace",
        metadata: dict | None = None,
        fingerprint: str | None = None,
    ) -> "AccessTrace":
        """Trusted fast constructor from dense resolved arrays.

        Rebuilds a trace from the arrays a :class:`ResolvedTrace` carries
        (item index and write flag per access, plus the first-touch item
        tuple) — the shared-memory attach path in :mod:`repro.memory.shm`.
        Skips all per-access validation: the caller guarantees the arrays
        came from a valid trace, so ``Access.__post_init__`` checks would
        only re-prove what resolution already proved, per access, in
        Python.  ``items`` must be the distinct item names in first-touch
        order (``_items`` is pre-seeded from it).
        """
        read, write = AccessKind.READ, AccessKind.WRITE
        records = []
        append = records.append
        item_names = tuple(items)
        for index, write_flag in zip(item_at.tolist(), is_write.tolist()):
            access = object.__new__(Access)
            object.__setattr__(access, "item", item_names[index])
            object.__setattr__(access, "kind", write if write_flag else read)
            append(access)
        trace = cls.__new__(cls)
        trace._accesses = tuple(records)
        trace.name = name
        trace.metadata = dict(metadata or {})
        trace._items = item_names
        trace._fingerprint = fingerprint
        trace._resolved = None
        return trace


class TraceRecorder:
    """Mutable builder used by instrumented kernels to emit accesses."""

    def __init__(self) -> None:
        self._accesses: list[Access] = []

    def record_read(self, item: str) -> None:
        self._accesses.append(Access(item, AccessKind.READ))

    def record_write(self, item: str) -> None:
        self._accesses.append(Access(item, AccessKind.WRITE))

    def __len__(self) -> int:
        return len(self._accesses)

    def to_trace(self, name: str, metadata: dict | None = None) -> AccessTrace:
        """Freeze the recorded accesses into an :class:`AccessTrace`."""
        return AccessTrace(self._accesses, name=name, metadata=metadata)


class TracedArray:
    """A list-like array whose element accesses are recorded.

    Instrumented kernels operate on these instead of plain lists; every
    ``x[i]`` read and ``x[i] = v`` write appends an access named
    ``"<name>[<i>]"`` to the shared recorder.  Negative indices are
    normalised so the same element always gets the same item name.
    """

    def __init__(self, name: str, values: Iterable, recorder: TraceRecorder) -> None:
        self.name = name
        self._values = list(values)
        self._recorder = recorder

    def __len__(self) -> int:
        return len(self._values)

    def _item(self, index: int) -> str:
        if index < 0:
            index += len(self._values)
        if not 0 <= index < len(self._values):
            raise IndexError(f"{self.name}[{index}] out of range")
        return f"{self.name}[{index}]"

    def __getitem__(self, index: int):
        self._recorder.record_read(self._item(index))
        if index < 0:
            index += len(self._values)
        return self._values[index]

    def __setitem__(self, index: int, value) -> None:
        self._recorder.record_write(self._item(index))
        if index < 0:
            index += len(self._values)
        self._values[index] = value

    def peek(self, index: int):
        """Read a value without recording an access (verification only)."""
        return self._values[index]

    def snapshot(self) -> list:
        """Copy of the current values without recording accesses."""
        return list(self._values)


class TracedScalar:
    """A scalar variable whose reads/writes are recorded.

    Kernels use ``s.get()`` / ``s.set(v)`` so Python's name binding doesn't
    hide accesses.
    """

    def __init__(self, name: str, value, recorder: TraceRecorder) -> None:
        self.name = name
        self._value = value
        self._recorder = recorder

    def get(self):
        self._recorder.record_read(self.name)
        return self._value

    def set(self, value) -> None:
        self._recorder.record_write(self.name)
        self._value = value

    def peek(self):
        """Read the value without recording an access."""
        return self._value
