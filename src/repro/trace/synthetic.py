"""Synthetic access-trace generators.

These provide controlled-locality inputs for unit tests, property tests, and
the scaling/runtime experiments (E8, E9) where the benchmark kernels would be
too slow or too irregular.  All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import TraceError
from repro.trace.model import Access, AccessKind, AccessTrace


def _item_names(num_items: int, prefix: str = "v") -> list[str]:
    if num_items <= 0:
        raise TraceError(f"num_items must be positive, got {num_items}")
    return [f"{prefix}{i}" for i in range(num_items)]


def _with_writes(
    items: Sequence[str], write_fraction: float, rng: random.Random
) -> list[Access]:
    if not 0.0 <= write_fraction <= 1.0:
        raise TraceError(
            f"write_fraction must be in [0, 1], got {write_fraction}"
        )
    return [
        Access(
            item,
            AccessKind.WRITE if rng.random() < write_fraction else AccessKind.READ,
        )
        for item in items
    ]


def uniform_trace(
    num_items: int,
    num_accesses: int,
    seed: int = 0,
    write_fraction: float = 0.25,
) -> AccessTrace:
    """Uniformly random accesses — the locality-free worst case."""
    rng = random.Random(seed)
    names = _item_names(num_items)
    sequence = [rng.choice(names) for _ in range(num_accesses)]
    return AccessTrace(
        _with_writes(sequence, write_fraction, rng),
        name=f"uniform(n={num_items},m={num_accesses},s={seed})",
        metadata={"generator": "uniform", "seed": seed},
    )


def zipf_trace(
    num_items: int,
    num_accesses: int,
    alpha: float = 1.2,
    seed: int = 0,
    write_fraction: float = 0.25,
) -> AccessTrace:
    """Zipf-distributed item popularity (hot/cold skew, no sequencing)."""
    if alpha <= 0:
        raise TraceError(f"alpha must be positive, got {alpha}")
    rng = random.Random(seed)
    names = _item_names(num_items)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(num_items)]
    sequence = rng.choices(names, weights=weights, k=num_accesses)
    return AccessTrace(
        _with_writes(sequence, write_fraction, rng),
        name=f"zipf(n={num_items},m={num_accesses},a={alpha},s={seed})",
        metadata={"generator": "zipf", "seed": seed, "alpha": alpha},
    )


def markov_trace(
    num_items: int,
    num_accesses: int,
    locality: float = 0.8,
    neighborhood: int = 2,
    seed: int = 0,
    write_fraction: float = 0.25,
) -> AccessTrace:
    """First-order Markov trace with tunable sequential locality.

    With probability ``locality`` the next access stays within
    ``neighborhood`` items (in name-index space) of the current one;
    otherwise it jumps uniformly.  High locality traces reward placement the
    way loop-carried reuse in real kernels does.
    """
    if not 0.0 <= locality <= 1.0:
        raise TraceError(f"locality must be in [0, 1], got {locality}")
    if neighborhood < 1:
        raise TraceError(f"neighborhood must be >= 1, got {neighborhood}")
    rng = random.Random(seed)
    names = _item_names(num_items)
    current = rng.randrange(num_items)
    sequence = [names[current]]
    for _ in range(max(0, num_accesses - 1)):
        if rng.random() < locality:
            step = rng.randint(-neighborhood, neighborhood)
            current = max(0, min(num_items - 1, current + step))
        else:
            current = rng.randrange(num_items)
        sequence.append(names[current])
    return AccessTrace(
        _with_writes(sequence[:num_accesses], write_fraction, rng),
        name=(
            f"markov(n={num_items},m={num_accesses},"
            f"l={locality},s={seed})"
        ),
        metadata={"generator": "markov", "seed": seed, "locality": locality},
    )


def loop_nest_trace(
    array_sizes: Sequence[int] = (8, 8),
    iterations: int = 4,
    seed: int = 0,
) -> AccessTrace:
    """Idealised loop nest: arrays streamed in order, repeated.

    Models the dominant pattern of DSP kernels: per iteration every array is
    walked sequentially, with a read-modify-write on the last array.
    """
    if iterations <= 0:
        raise TraceError(f"iterations must be positive, got {iterations}")
    if not array_sizes or any(size <= 0 for size in array_sizes):
        raise TraceError(f"array_sizes must be positive, got {array_sizes}")
    accesses: list[Access] = []
    for _ in range(iterations):
        for array_index, size in enumerate(array_sizes):
            name = chr(ord("A") + array_index)
            is_last = array_index == len(array_sizes) - 1
            for element in range(size):
                item = f"{name}[{element}]"
                accesses.append(Access(item, AccessKind.READ))
                if is_last:
                    accesses.append(Access(item, AccessKind.WRITE))
    return AccessTrace(
        accesses,
        name=f"loopnest(sizes={tuple(array_sizes)},it={iterations})",
        metadata={"generator": "loop_nest", "seed": seed},
    )


def pingpong_trace(
    num_pairs: int = 4,
    rounds: int = 32,
    seed: int = 0,
) -> AccessTrace:
    """Pairs of items accessed in strict alternation (A0 B0 A0 B0 ... A1 B1 ...).

    The canonical adversarial input for naive placement: each pair should be
    adjacent (or split across DBCs) to make its alternation free.
    """
    if num_pairs <= 0 or rounds <= 0:
        raise TraceError("num_pairs and rounds must be positive")
    accesses: list[Access] = []
    for pair in range(num_pairs):
        left, right = f"p{pair}a", f"p{pair}b"
        for _ in range(rounds):
            accesses.append(Access(left, AccessKind.READ))
            accesses.append(Access(right, AccessKind.WRITE))
    return AccessTrace(
        accesses,
        name=f"pingpong(pairs={num_pairs},rounds={rounds})",
        metadata={"generator": "pingpong", "seed": seed},
    )


def stencil_trace(
    width: int = 16,
    sweeps: int = 4,
    radius: int = 1,
    seed: int = 0,
) -> AccessTrace:
    """1-D stencil sweeps: each point reads its neighbourhood, writes itself."""
    if width <= 2 * radius:
        raise TraceError(
            f"width must exceed 2*radius, got width={width}, radius={radius}"
        )
    accesses: list[Access] = []
    for _ in range(sweeps):
        for center in range(radius, width - radius):
            for offset in range(-radius, radius + 1):
                accesses.append(Access(f"g[{center + offset}]", AccessKind.READ))
            accesses.append(Access(f"g[{center}]", AccessKind.WRITE))
    return AccessTrace(
        accesses,
        name=f"stencil(w={width},sweeps={sweeps},r={radius})",
        metadata={"generator": "stencil", "seed": seed},
    )


def gups_trace(
    table_size: int = 64,
    num_updates: int = 512,
    seed: int = 0,
) -> AccessTrace:
    """GUPS-style random read-modify-write updates to a table.

    The canonical locality-free RMW stress pattern (HPC Challenge
    RandomAccess): every update reads and writes a random table word.
    """
    if table_size <= 0 or num_updates < 0:
        raise TraceError("table_size must be positive, num_updates >= 0")
    rng = random.Random(seed)
    accesses: list[Access] = []
    for _ in range(num_updates):
        index = rng.randrange(table_size)
        item = f"tab[{index}]"
        accesses.append(Access(item, AccessKind.READ))
        accesses.append(Access(item, AccessKind.WRITE))
    return AccessTrace(
        accesses,
        name=f"gups(n={table_size},u={num_updates},s={seed})",
        metadata={"generator": "gups", "seed": seed},
    )


def butterfly_trace(size: int = 16, seed: int = 0) -> AccessTrace:
    """FFT-style butterfly pairings: stage s pairs items 2^s apart.

    Pure communication skeleton (reads both lanes, writes both), isolating
    the stride-doubling pattern from the arithmetic of the real FFT kernel.
    """
    if size < 2 or size & (size - 1):
        raise TraceError(f"size must be a power of two >= 2, got {size}")
    accesses: list[Access] = []
    stride = 1
    while stride < size:
        for start in range(0, size, stride * 2):
            for k in range(stride):
                low = f"x[{start + k}]"
                high = f"x[{start + k + stride}]"
                accesses.append(Access(low, AccessKind.READ))
                accesses.append(Access(high, AccessKind.READ))
                accesses.append(Access(low, AccessKind.WRITE))
                accesses.append(Access(high, AccessKind.WRITE))
        stride *= 2
    return AccessTrace(
        accesses,
        name=f"butterfly(n={size})",
        metadata={"generator": "butterfly", "seed": seed},
    )


def blocked_trace(
    array_size: int = 32,
    block: int = 8,
    passes: int = 2,
    seed: int = 0,
) -> AccessTrace:
    """Cache-blocked sweeps: each block is revisited ``passes`` times before
    moving on — the tiled-loop pattern compilers emit for locality."""
    if array_size <= 0 or block <= 0 or passes <= 0:
        raise TraceError("array_size, block, and passes must be positive")
    accesses: list[Access] = []
    for start in range(0, array_size, block):
        end = min(array_size, start + block)
        for _ in range(passes):
            for index in range(start, end):
                accesses.append(Access(f"a[{index}]", AccessKind.READ))
            accesses.append(Access(f"a[{start}]", AccessKind.WRITE))
    return AccessTrace(
        accesses,
        name=f"blocked(n={array_size},b={block},p={passes})",
        metadata={"generator": "blocked", "seed": seed},
    )


GENERATORS = {
    "uniform": uniform_trace,
    "zipf": zipf_trace,
    "markov": markov_trace,
    "loop_nest": loop_nest_trace,
    "pingpong": pingpong_trace,
    "stencil": stencil_trace,
    "gups": gups_trace,
    "butterfly": butterfly_trace,
    "blocked": blocked_trace,
}
