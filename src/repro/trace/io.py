"""Trace serialisation: JSON-lines and a compact text format.

Two formats are supported:

* **JSONL** (``.jsonl``) — one JSON object per access plus a header object;
  self-describing, diff-friendly, keeps metadata.
* **Compact text** (``.trc``) — ``R item`` / ``W item`` lines with ``#``
  comments; matches the ad-hoc trace dumps common in the SPM literature.

Both round-trip exactly (tests assert this property with hypothesis).
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Iterator

from repro.errors import TraceError
from repro.trace.model import Access, AccessKind, AccessTrace

_JSONL_VERSION = 1

#: Text-format traces past this many accesses trigger a one-time hint to
#: repack them into the binary format (``repro trace pack``).
LARGE_TEXT_TRACE_ACCESSES = 1_000_000

_large_trace_warned = False


def _maybe_warn_large_trace(path: Path, num_accesses: int) -> None:
    """One-time (per process) nudge towards the binary format."""
    global _large_trace_warned
    if _large_trace_warned or num_accesses <= LARGE_TEXT_TRACE_ACCESSES:
        return
    _large_trace_warned = True
    warnings.warn(
        f"{path}: text-format trace holds {num_accesses:,} accesses; "
        f"convert it with 'repro trace pack' and simulate with "
        f"--engine streaming to avoid materialising it in RAM",
        stacklevel=3,
    )


def save_jsonl(trace: AccessTrace, path: str | Path) -> None:
    """Write a trace as JSON lines (header object + one object per access)."""
    path = Path(path)
    metadata = {
        key: value
        for key, value in trace.metadata.items()
        if _json_safe(value)
    }
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": "repro-trace",
            "version": _JSONL_VERSION,
            "name": trace.name,
            "metadata": metadata,
            "num_accesses": len(trace),
        }
        handle.write(json.dumps(header) + "\n")
        for access in trace:
            handle.write(
                json.dumps({"i": access.item, "k": access.kind.value}) + "\n"
            )


def _read_jsonl_header(handle, path: Path) -> dict:
    """Parse and validate the JSONL header object from an open file."""
    header_line = handle.readline()
    if not header_line:
        raise TraceError(f"{path}: empty trace file")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: invalid JSONL header: {exc}") from exc
    if header.get("format") != "repro-trace":
        raise TraceError(f"{path}: not a repro trace file")
    if header.get("version") != _JSONL_VERSION:
        raise TraceError(
            f"{path}: unsupported trace version {header.get('version')}"
        )
    return header


def iter_jsonl(path: str | Path) -> Iterator[tuple[str, str]]:
    """Stream ``(item, kind)`` pairs from a JSONL trace, line by line.

    Bounded memory regardless of trace length: this is the feed of the
    binary-format converter (:func:`repro.trace.binio.pack`) and the
    loop underneath :func:`load_jsonl`.  Raises the same
    :class:`TraceError`\\ s as the loader, including the header
    access-count cross-check once the stream is exhausted.
    """
    path = Path(path)
    count = 0
    with path.open("r", encoding="utf-8") as handle:
        header = _read_jsonl_header(handle, path)
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                pair = (record["i"], record["k"])
            except (json.JSONDecodeError, KeyError) as exc:
                raise TraceError(
                    f"{path}:{line_number}: malformed access record"
                ) from exc
            count += 1
            yield pair
    expected = header.get("num_accesses")
    if expected is not None and expected != count:
        raise TraceError(
            f"{path}: header declares {expected} accesses, found {count}"
        )


def load_jsonl(path: str | Path) -> AccessTrace:
    """Read a trace written by :func:`save_jsonl`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = _read_jsonl_header(handle, path)
    accesses = [
        Access(item, AccessKind.parse(kind)) for item, kind in iter_jsonl(path)
    ]
    _maybe_warn_large_trace(path, len(accesses))
    return AccessTrace(
        accesses, name=header.get("name", path.stem), metadata=header.get("metadata")
    )


def save_text(trace: AccessTrace, path: str | Path) -> None:
    """Write a trace in the compact ``R item`` / ``W item`` text format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# trace: {trace.name}\n")
        handle.write(f"# accesses: {len(trace)}\n")
        for access in trace:
            if any(ch.isspace() for ch in access.item):
                raise TraceError(
                    f"item {access.item!r} contains whitespace; "
                    "use the JSONL format instead"
                )
            handle.write(f"{access.kind.value} {access.item}\n")


def iter_text(path: str | Path) -> Iterator[tuple[str, str]]:
    """Stream ``(item, kind)`` pairs from a compact text trace.

    Line-by-line with bounded memory; comment lines are skipped (use
    :func:`peek_header` for the declared trace name).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise TraceError(f"{path}:{line_number}: expected 'R|W item'")
            kind, item = parts
            yield item, kind


def load_text(path: str | Path) -> AccessTrace:
    """Read a trace written by :func:`save_text` (``#`` lines are comments)."""
    path = Path(path)
    name = path.stem
    accesses = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# trace:"):
                    name = line.split(":", 1)[1].strip()
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise TraceError(f"{path}:{line_number}: expected 'R|W item'")
            kind, item = parts
            try:
                accesses.append(Access(item, AccessKind.parse(kind)))
            except TraceError as exc:
                raise TraceError(f"{path}:{line_number}: {exc}") from exc
    _maybe_warn_large_trace(path, len(accesses))
    return AccessTrace(accesses, name=name)


def iter_accesses(path: str | Path) -> Iterator[tuple[str, str]]:
    """Stream ``(item, kind)`` pairs from any text trace format.

    Dispatches on the file extension like :func:`load`, but never builds
    the in-memory trace — the right feed for ``repro trace pack``.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return iter_jsonl(path)
    if path.suffix == ".trc":
        return iter_text(path)
    raise TraceError(
        f"unknown trace extension {path.suffix!r}; use .jsonl or .trc"
    )


def peek_header(path: str | Path) -> dict:
    """Read just the name/metadata of a text trace without its accesses.

    For JSONL this is the header object; for ``.trc`` it scans the leading
    comment block for the ``# trace:`` line.  Returns a dict with at least
    ``"name"`` (defaulting to the file stem) and ``"metadata"``.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        with path.open("r", encoding="utf-8") as handle:
            header = _read_jsonl_header(handle, path)
        return {
            "name": header.get("name", path.stem),
            "metadata": header.get("metadata") or {},
        }
    if path.suffix == ".trc":
        name = path.stem
        with path.open("r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                if not line.startswith("#"):
                    break
                if line.startswith("# trace:"):
                    name = line.split(":", 1)[1].strip()
        return {"name": name, "metadata": {}}
    raise TraceError(
        f"unknown trace extension {path.suffix!r}; use .jsonl or .trc"
    )


def save(trace: AccessTrace, path: str | Path) -> None:
    """Save a trace, picking the format from the file extension."""
    path = Path(path)
    if path.suffix == ".jsonl":
        save_jsonl(trace, path)
    elif path.suffix == ".trc":
        save_text(trace, path)
    else:
        raise TraceError(
            f"unknown trace extension {path.suffix!r}; use .jsonl or .trc"
        )


def load(path: str | Path) -> AccessTrace:
    """Load a trace, picking the format from the file extension."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return load_jsonl(path)
    if path.suffix == ".trc":
        return load_text(path)
    raise TraceError(
        f"unknown trace extension {path.suffix!r}; use .jsonl or .trc"
    )


def _json_safe(value) -> bool:
    """True if ``value`` serialises to JSON without custom encoders."""
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True
