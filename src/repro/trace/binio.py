"""Memory-mapped binary trace format (``.rtb``) and streaming access.

Text trace formats (:mod:`repro.trace.io`) materialise one ``Access``
object per record, which caps usable traces at ~10⁷ accesses per box.
This module defines a fixed-width little-endian on-disk layout that the
streaming simulation engine (:mod:`repro.memory.stream_sim`) can window
through ``numpy.memmap`` without ever holding the whole trace in RAM:

* **Header** (128 bytes, little-endian)::

      offset  size  field
      0       8     magic  b"REPROTRC"
      8       4     format version (currently 1)
      12      4     flags (reserved, 0)
      16      8     num_accesses
      24      8     num_items
      32      8     records_offset (always 128)
      40      8     meta_offset
      48      8     meta_size
      56      64    fingerprint (ascii sha256 hex, same as
                    ``AccessTrace.fingerprint()``)
      120     8     zero padding

* **Records**: ``num_accesses`` ``uint32`` words at ``records_offset``.
  Bit 31 is the write flag; bits 0–30 hold the item index (so up to
  2³¹ distinct items, 4 bytes per access).
* **Meta**: a UTF-8 JSON object ``{"name", "metadata", "items"}`` at
  ``meta_offset``; ``items`` lists the distinct item names in first-touch
  order, indexed by the records.

Records are written *before* the meta block and the header is patched
last, so :func:`pack` can stream accesses from a generator without
knowing the item table (or even the trace length) up front.

Entry points: :func:`save_binary` (from an in-memory trace),
:func:`pack` (from any ``(item, kind)`` stream — e.g. the line-streaming
readers in :mod:`repro.trace.io`), and :func:`open_binary`, which
returns a windowed, lazily-resolving :class:`StreamingTrace`.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path
from typing import Iterable, Iterator

from repro.chaos import failpoint
from repro.errors import InjectedFaultError, TraceError, TraceFormatError
from repro.trace.model import AccessTrace

MAGIC = b"REPROTRC"
VERSION = 1
HEADER_SIZE = 128
_HEADER_STRUCT = struct.Struct("<8sIIQQQQQ64s")
_WRITE_BIT = 1 << 31
_ITEM_MASK = _WRITE_BIT - 1

#: Suggested file extension for packed binary traces.
BINARY_SUFFIX = ".rtb"

#: Records buffered in RAM before each write during :func:`pack`.
_PACK_BUFFER_RECORDS = 1 << 16

#: Default target size of :meth:`StreamingTrace.sample_trace`.
SAMPLE_TARGET_ACCESSES = 100_000
SAMPLE_WINDOWS = 16


def _pack_header(
    num_accesses: int,
    num_items: int,
    meta_offset: int,
    meta_size: int,
    fingerprint: str,
) -> bytes:
    header = _HEADER_STRUCT.pack(
        MAGIC,
        VERSION,
        0,
        num_accesses,
        num_items,
        HEADER_SIZE,
        meta_offset,
        meta_size,
        fingerprint.encode("ascii"),
    )
    return header + b"\x00" * (HEADER_SIZE - len(header))


def _chaos_write(handle, payload: bytes) -> None:
    """Write ``payload``, honouring a ``binio.write`` truncate failpoint.

    A truncate directive simulates a torn write: only ``keep_bytes`` of
    the payload reach the file before a typed error aborts the pack —
    exactly the artifact ``repro fsck`` must recognise and salvage.
    """
    action = failpoint("binio.write")
    if action is not None and action.kind == "truncate":
        handle.write(payload[: action.keep_bytes])
        handle.flush()
        raise InjectedFaultError(
            f"chaos torn write: kept {action.keep_bytes} of "
            f"{len(payload)} bytes"
        )
    handle.write(payload)


def pack(
    accesses: Iterable[tuple[str, str]],
    path: str | Path,
    name: str = "trace",
    metadata: dict | None = None,
) -> int:
    """Stream ``(item, kind)`` pairs into a binary trace file.

    ``kind`` is ``"R"``/``"W"`` (case-insensitive, ``"read"``/``"write"``
    also accepted).  The item table and fingerprint are accumulated on the
    fly, so the input may be a generator of unbounded length; peak memory
    is one record buffer plus the distinct-item table.  Returns the number
    of accesses written.
    """
    path = Path(path)
    index: dict[str, int] = {}
    digest = hashlib.sha256()
    buffer = bytearray()
    count = 0
    with path.open("wb") as handle:
        handle.write(b"\x00" * HEADER_SIZE)  # patched at the end
        for item, kind in accesses:
            kind = str(kind).strip().upper()
            if kind in ("R", "READ"):
                flag = 0
                kind = "R"
            elif kind in ("W", "WRITE"):
                flag = _WRITE_BIT
                kind = "W"
            else:
                raise TraceError(f"unknown access kind {kind!r}")
            if not item:
                raise TraceError("access item name must be non-empty")
            position = index.setdefault(item, len(index))
            if position >= _ITEM_MASK:
                raise TraceError(
                    f"too many distinct items for the binary format "
                    f"(limit {_ITEM_MASK})"
                )
            digest.update(kind.encode("ascii"))
            digest.update(item.encode("utf-8"))
            digest.update(b"\x00")
            buffer += (position | flag).to_bytes(4, "little")
            count += 1
            if count % _PACK_BUFFER_RECORDS == 0:
                _chaos_write(handle, bytes(buffer))
                buffer.clear()
        if buffer:
            _chaos_write(handle, bytes(buffer))
        meta = json.dumps(
            {
                "name": name,
                "metadata": dict(metadata or {}),
                "items": list(index),
            }
        ).encode("utf-8")
        meta_offset = HEADER_SIZE + 4 * count
        _chaos_write(handle, meta)
        handle.seek(0)
        _chaos_write(
            handle,
            _pack_header(
                count, len(index), meta_offset, len(meta), digest.hexdigest()
            ),
        )
    return count


def save_binary(trace: AccessTrace, path: str | Path) -> None:
    """Write an in-memory :class:`AccessTrace` as a binary trace file."""
    from repro.trace.io import _json_safe

    metadata = {
        key: value for key, value in trace.metadata.items() if _json_safe(value)
    }
    pack(
        ((access.item, access.kind.value) for access in trace),
        path,
        name=trace.name,
        metadata=metadata,
    )


def _read_header(path: Path) -> tuple[int, int, int, int, int, str]:
    """Parse and validate the fixed header; returns its decoded fields.

    All format violations raise :class:`~repro.errors.TraceFormatError`
    carrying the byte offset where the format breaks down and — for
    truncated record/meta regions — how many leading records are still
    salvageable (``repro fsck`` consumes both).
    """
    failpoint("binio.read")
    try:
        with path.open("rb") as handle:
            raw = handle.read(HEADER_SIZE)
    except OSError as exc:
        raise TraceFormatError(
            f"{path}: cannot read binary trace: {exc}", path=path
        ) from exc
    if len(raw) < HEADER_SIZE:
        raise TraceFormatError(
            f"{path}: truncated binary trace header "
            f"({len(raw)} bytes, need {HEADER_SIZE})",
            path=path,
            byte_offset=len(raw),
            salvageable_records=0,
        )
    magic, version, _flags, num_accesses, num_items, records_offset, \
        meta_offset, meta_size, fingerprint_raw = _HEADER_STRUCT.unpack(
            raw[: _HEADER_STRUCT.size]
        )
    if magic != MAGIC:
        detail = (
            "all-zero header: pack() died before patching it"
            if raw == b"\x00" * HEADER_SIZE
            else "bad magic"
        )
        raise TraceFormatError(
            f"{path}: not a repro binary trace ({detail})",
            path=path,
            byte_offset=0,
            salvageable_records=0,
        )
    if version != VERSION:
        raise TraceFormatError(
            f"{path}: unsupported binary trace version {version} "
            f"(this build reads version {VERSION})",
            path=path,
            byte_offset=8,
        )
    try:
        fingerprint = fingerprint_raw.decode("ascii")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            f"{path}: corrupt fingerprint field", path=path, byte_offset=56
        ) from exc
    size = path.stat().st_size
    records_end = records_offset + 4 * num_accesses
    if records_offset < HEADER_SIZE or records_end > size:
        salvageable = max(0, (size - records_offset) // 4) \
            if records_offset >= HEADER_SIZE else 0
        raise TraceFormatError(
            f"{path}: record region [{records_offset}, {records_end}) "
            f"outside the {size}-byte file (truncated?)",
            path=path,
            byte_offset=size,
            salvageable_records=int(salvageable),
        )
    if meta_offset + meta_size > size:
        raise TraceFormatError(
            f"{path}: meta region [{meta_offset}, {meta_offset + meta_size}) "
            f"outside the {size}-byte file (truncated?)",
            path=path,
            byte_offset=size,
            salvageable_records=int(num_accesses),
        )
    return (
        num_accesses,
        num_items,
        records_offset,
        meta_offset,
        meta_size,
        fingerprint,
    )


class StreamingTrace:
    """A binary trace opened for windowed, out-of-core access.

    Exposes the same identity surface as :class:`AccessTrace` (``name``,
    ``metadata``, ``items``, ``len``, ``fingerprint()``) but keeps the
    records on disk behind a read-only ``numpy.memmap``: nothing is
    materialised until a window is asked for, and each window costs only
    its own arrays.  Instances pickle as their path, so worker processes
    re-map the file independently (no shared-memory plumbing needed).
    """

    def __init__(self, path: str | Path) -> None:
        import numpy as np

        self.path = Path(path)
        (
            self._num_accesses,
            num_items,
            records_offset,
            meta_offset,
            meta_size,
            self._fingerprint,
        ) = _read_header(self.path)
        with self.path.open("rb") as handle:
            handle.seek(meta_offset)
            raw_meta = handle.read(meta_size)
        try:
            meta = json.loads(raw_meta.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceFormatError(
                f"{self.path}: corrupt meta block: {exc}",
                path=self.path,
                byte_offset=meta_offset,
                salvageable_records=self._num_accesses,
            ) from exc
        items = meta.get("items")
        if not isinstance(items, list) or len(items) != num_items:
            raise TraceFormatError(
                f"{self.path}: meta lists "
                f"{len(items) if isinstance(items, list) else 'no'} "
                f"items, header declares {num_items}",
                path=self.path,
                byte_offset=meta_offset,
                salvageable_records=self._num_accesses,
            )
        self._items: tuple[str, ...] = tuple(str(item) for item in items)
        self.name = str(meta.get("name", self.path.stem))
        self.metadata = dict(meta.get("metadata") or {})
        if self._num_accesses:
            self._records = np.memmap(
                self.path,
                dtype=np.uint32,
                mode="r",
                offset=records_offset,
                shape=(self._num_accesses,),
            )
        else:
            self._records = np.empty(0, dtype=np.uint32)

    # -- pickling: carry the path, re-map on arrival --------------------
    def __getstate__(self):
        return {"path": str(self.path)}

    def __setstate__(self, state):
        self.__init__(state["path"])

    # -- identity surface ----------------------------------------------
    def __len__(self) -> int:
        return self._num_accesses

    @property
    def num_accesses(self) -> int:
        return self._num_accesses

    @property
    def items(self) -> tuple[str, ...]:
        """Distinct item names in first-touch order."""
        return self._items

    @property
    def num_items(self) -> int:
        return len(self._items)

    def fingerprint(self) -> str:
        """The sha256 access-sequence hash recorded at pack time.

        Identical to ``AccessTrace.fingerprint()`` of the materialised
        trace, so caches keyed on it are shared across representations.
        """
        return self._fingerprint

    def __repr__(self) -> str:
        return (
            f"StreamingTrace({str(self.path)!r}, n_accesses={len(self)}, "
            f"n_items={self.num_items})"
        )

    # -- windowed access ------------------------------------------------
    def chunk_arrays(self, start: int, stop: int):
        """Dense ``(item_at, is_write)`` arrays for accesses [start, stop).

        ``item_at`` is int64 (indices into :attr:`items`), ``is_write``
        bool.  This is the only decode path; everything else builds on it.
        """
        import numpy as np

        failpoint("binio.read")
        if not 0 <= start <= stop <= self._num_accesses:
            raise TraceError(
                f"window [{start}, {stop}) outside trace of "
                f"{self._num_accesses} accesses"
            )
        raw = np.asarray(self._records[start:stop])
        item_at = (raw & _ITEM_MASK).astype(np.int64)
        is_write = (raw >> 31).astype(np.bool_)
        return item_at, is_write

    def iter_chunks(self, chunk_size: int) -> Iterator[tuple[int, int]]:
        """Yield ``(start, stop)`` bounds covering the trace in order."""
        if chunk_size <= 0:
            raise TraceError(f"chunk_size must be positive, got {chunk_size}")
        for start in range(0, self._num_accesses, chunk_size):
            yield start, min(start + chunk_size, self._num_accesses)

    def window(self, start: int, stop: int) -> AccessTrace:
        """Materialise accesses [start, stop) as an :class:`AccessTrace`.

        The returned trace carries the *full* item table (indices in the
        records are global), so any placement valid for the whole trace is
        valid for every window.
        """
        item_at, is_write = self.chunk_arrays(start, stop)
        return AccessTrace._from_dense(
            self._items,
            item_at,
            is_write,
            name=f"{self.name}[{start}:{stop}]",
            metadata=self.metadata,
        )

    def to_trace(self) -> AccessTrace:
        """Materialise the whole trace in memory (defeats streaming)."""
        item_at, is_write = self.chunk_arrays(0, self._num_accesses)
        return AccessTrace._from_dense(
            self._items,
            item_at,
            is_write,
            name=self.name,
            metadata=self.metadata,
            fingerprint=self._fingerprint,
        )

    def sample_trace(
        self,
        target_accesses: int = SAMPLE_TARGET_ACCESSES,
        windows: int = SAMPLE_WINDOWS,
    ) -> AccessTrace:
        """Bounded-size sample for placement optimization.

        Concatenates ``windows`` evenly spaced windows totalling about
        ``target_accesses`` accesses, then appends one read per item the
        sample missed, so the derived placement always covers the full
        item table.  Statistics (affinity, frequency) approximate the full
        trace; the *cost* of a placement is evaluated exactly later by
        whichever engine replays the real trace.
        """
        import numpy as np

        total = self._num_accesses
        if total <= target_accesses:
            return self.to_trace()
        windows = max(1, min(windows, total))
        span = max(1, target_accesses // windows)
        starts = np.linspace(0, total - span, windows).astype(np.int64)
        parts = [self.chunk_arrays(int(s), int(s) + span) for s in starts]
        item_at = np.concatenate([p[0] for p in parts])
        is_write = np.concatenate([p[1] for p in parts])
        missing = np.setdiff1d(
            np.arange(len(self._items), dtype=np.int64), np.unique(item_at)
        )
        if missing.size:
            item_at = np.concatenate([item_at, missing])
            is_write = np.concatenate(
                [is_write, np.zeros(missing.size, dtype=np.bool_)]
            )
        return AccessTrace._from_dense(
            self._items,
            item_at,
            is_write,
            name=f"{self.name}|sample{item_at.size}",
            metadata=self.metadata,
        )

    def read_write_counts(self) -> tuple[int, int]:
        """Total (reads, writes), computed in bounded-memory chunks."""
        writes = 0
        for start, stop in self.iter_chunks(1 << 20):
            _item_at, is_write = self.chunk_arrays(start, stop)
            writes += int(is_write.sum())
        return self._num_accesses - writes, writes


def open_binary(path: str | Path) -> StreamingTrace:
    """Open a binary trace file for streaming access."""
    return StreamingTrace(path)
