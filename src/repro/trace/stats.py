"""Trace statistics and affinity-graph construction.

The placement heuristic's main input is the **affinity graph**: nodes are
items, and the weight of edge ``(u, v)`` counts how often ``u`` and ``v`` are
accessed consecutively.  For single-port DBCs under the lazy shift policy the
intra-DBC shift cost of a placement decomposes exactly over these adjacent
pairs (restricted to each DBC's own sub-sequence), which is why the graph is
the right abstraction.

:class:`TraceStats` additionally reports the locality measures used in the
benchmark-characteristics table (E1): reuse distances, read/write mix, and
the working-set size.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Mapping

from repro.trace.model import AccessTrace


def affinity_graph(
    trace: AccessTrace,
    include_self_pairs: bool = False,
) -> dict[tuple[str, str], int]:
    """Adjacency-frequency weights over unordered item pairs.

    ``include_self_pairs`` keeps ``(u, u)`` entries; they cost no shifts so
    the optimizers exclude them by default.
    """
    weights: dict[tuple[str, str], int] = defaultdict(int)
    for left, right in trace.adjacent_pairs():
        if left == right and not include_self_pairs:
            continue
        key = (left, right) if left <= right else (right, left)
        weights[key] += 1
    return dict(weights)


def transition_counts(trace: AccessTrace) -> dict[tuple[str, str], int]:
    """Directed consecutive-access counts (keeps order and self-pairs)."""
    counts: dict[tuple[str, str], int] = defaultdict(int)
    for pair in trace.adjacent_pairs():
        counts[pair] += 1
    return dict(counts)


def reuse_distances(trace: AccessTrace) -> list[int]:
    """LRU stack distance of each reuse (unique items since last access).

    First accesses (cold misses) are excluded.  Small distances mean high
    temporal locality, which is where shift-aware placement gains the most.

    The stack distance of a reuse at time ``t`` equals the number of
    distinct items whose *last* access falls strictly between the item's
    previous access and ``t``; a Fenwick tree over access timestamps counts
    those in O(log n) per access (O(n log n) overall, where the explicit
    LRU-stack walk is quadratic on low-locality traces).
    """
    n = len(trace)
    tree = [0] * (n + 1)  # Fenwick tree over 1-based access timestamps

    def add(index: int, delta: int) -> None:
        while index <= n:
            tree[index] += delta
            index += index & -index

    def prefix(index: int) -> int:
        total = 0
        while index > 0:
            total += tree[index]
            index -= index & -index
        return total

    distances: list[int] = []
    last_time: dict[str, int] = {}
    for now, access in enumerate(trace, start=1):
        item = access.item
        previous = last_time.get(item)
        if previous is not None:
            distances.append(prefix(now - 1) - prefix(previous))
            add(previous, -1)
        add(now, 1)
        last_time[item] = now
    return distances


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (one row of the E1 table)."""

    name: str
    num_accesses: int
    num_items: int
    reads: int
    writes: int
    mean_reuse_distance: float
    median_reuse_distance: float
    unique_pairs: int
    max_item_frequency: int
    top_item: str

    @property
    def write_fraction(self) -> float:
        """Share of accesses that are writes (0..1)."""
        if not self.num_accesses:
            return 0.0
        return self.writes / self.num_accesses

    @property
    def accesses_per_item(self) -> float:
        """Average number of accesses per distinct item."""
        if not self.num_items:
            return 0.0
        return self.num_accesses / self.num_items


def compute_stats(trace: AccessTrace) -> TraceStats:
    """Compute :class:`TraceStats` for a trace."""
    reads, writes = trace.read_write_counts()
    distances = reuse_distances(trace)
    if distances:
        ordered = sorted(distances)
        mean = sum(ordered) / len(ordered)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            median = float(ordered[middle])
        else:
            median = (ordered[middle - 1] + ordered[middle]) / 2
    else:
        mean = 0.0
        median = 0.0
    frequencies = trace.frequencies()
    if frequencies:
        top_count = max(frequencies.values())
        # Deterministic tie-break: lowest item name among the most frequent
        # (most_common(1) depends on insertion order).
        top_item = min(
            item for item, count in frequencies.items() if count == top_count
        )
    else:
        top_item, top_count = "", 0
    return TraceStats(
        name=trace.name,
        num_accesses=len(trace),
        num_items=trace.num_items,
        reads=reads,
        writes=writes,
        mean_reuse_distance=mean,
        median_reuse_distance=median,
        unique_pairs=len(affinity_graph(trace)),
        max_item_frequency=top_count,
        top_item=top_item,
    )


@dataclass
class AffinityMatrix:
    """Dense integer affinity matrix over an item index.

    Convenience representation for numpy-based algorithms (spectral ordering,
    exact DP): ``index[item]`` maps names to rows, ``matrix[i][j]`` holds the
    adjacency count.  Built lazily from the pair dictionary to avoid a hard
    numpy dependency at trace level.
    """

    items: tuple[str, ...]
    index: Mapping[str, int]
    pair_weights: dict[tuple[int, int], int] = field(default_factory=dict)

    @classmethod
    def from_trace(cls, trace: AccessTrace) -> "AffinityMatrix":
        items = trace.items
        index = {item: i for i, item in enumerate(items)}
        pair_weights: dict[tuple[int, int], int] = defaultdict(int)
        for (left, right), weight in affinity_graph(trace).items():
            i, j = index[left], index[right]
            if i > j:
                i, j = j, i
            pair_weights[(i, j)] += weight
        return cls(items=items, index=index, pair_weights=dict(pair_weights))

    @property
    def num_items(self) -> int:
        return len(self.items)

    def weight(self, i: int, j: int) -> int:
        """Affinity between item indices ``i`` and ``j`` (0 if none)."""
        if i > j:
            i, j = j, i
        return self.pair_weights.get((i, j), 0)

    def to_numpy(self):
        """Dense symmetric numpy matrix of the affinity weights."""
        import numpy as np

        n = self.num_items
        matrix = np.zeros((n, n), dtype=float)
        for (i, j), weight in self.pair_weights.items():
            matrix[i, j] = weight
            matrix[j, i] = weight
        return matrix

    def neighbor_weights(self, i: int) -> dict[int, int]:
        """All nonzero affinities incident to item index ``i``."""
        result: dict[int, int] = {}
        for (a, b), weight in self.pair_weights.items():
            if a == i:
                result[b] = result.get(b, 0) + weight
            elif b == i:
                result[a] = result.get(a, 0) + weight
        return result


def hot_items(trace: AccessTrace) -> list[str]:
    """Items ordered by descending access frequency (ties: first touch)."""
    frequencies = trace.frequencies()
    first_touch = {item: i for i, item in enumerate(trace.items)}
    return sorted(
        frequencies,
        key=lambda item: (-frequencies[item], first_touch[item]),
    )


def shift_locality_score(trace: AccessTrace) -> float:
    """Heuristic 0..1 score of how placement-sensitive a trace is.

    Computed as the weight mass of the top ``n`` affinity edges (``n`` =
    number of items) over the total affinity mass: a high score means a few
    pairs dominate transitions, so a good linear arrangement can serve most
    transitions with short shifts.
    """
    weights = sorted(affinity_graph(trace).values(), reverse=True)
    total = sum(weights)
    if not total:
        return 0.0
    top = sum(weights[: max(1, trace.num_items)])
    return top / total
