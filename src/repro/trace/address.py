"""Raw-address trace ingestion (profiler/simulator output format).

Real memory profilers emit *addresses*, not variable names.  This module
converts address streams into the item-granular :class:`AccessTrace` the
optimizers consume:

* :func:`items_from_addresses` — word-quantise addresses and name each word
  ``w_<hex>`` (optionally restricted to an address range, e.g. the SPM
  segment).
* :func:`load_address_trace` — parse the common two-column text dump format
  (``R 0x1000`` / ``W 0x1004``, ``#`` comments, decimal or hex), as produced
  by gem5-style trace hooks.
* :func:`save_address_trace` — emit that format (round-trips).

The word size is configurable; everything below word granularity collapses
onto the containing word, matching how a word-organised DWM scratchpad sees
the stream.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import TraceError
from repro.trace.model import Access, AccessKind, AccessTrace


def word_item_name(address: int, word_bytes: int = 4) -> str:
    """Canonical item name of the word containing ``address``."""
    if word_bytes <= 0:
        raise TraceError(f"word_bytes must be positive, got {word_bytes}")
    if address < 0:
        raise TraceError(f"addresses must be non-negative, got {address}")
    word = address // word_bytes
    return f"w_{word * word_bytes:x}"


def items_from_addresses(
    records: Iterable[tuple[int, str]],
    word_bytes: int = 4,
    address_range: tuple[int, int] | None = None,
    name: str = "address-trace",
) -> AccessTrace:
    """Convert ``(address, kind)`` records into an item-granular trace.

    ``address_range`` (inclusive start, exclusive end) drops accesses outside
    the window — typically the scratchpad segment of the address space.
    """
    accesses: list[Access] = []
    for address, kind in records:
        if address_range is not None:
            start, end = address_range
            if not start <= address < end:
                continue
        accesses.append(
            Access(word_item_name(address, word_bytes), AccessKind.parse(kind))
        )
    return AccessTrace(accesses, name=name, metadata={"word_bytes": word_bytes})


def parse_address_line(line: str, line_number: int = 0) -> tuple[int, str] | None:
    """Parse one ``R|W <address>`` line; returns None for blanks/comments."""
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.split()
    if len(parts) != 2:
        raise TraceError(
            f"line {line_number}: expected 'R|W <address>', got {line!r}"
        )
    kind, address_text = parts
    if kind.upper() not in ("R", "W"):
        # Some dumps put the address first.
        kind, address_text = address_text, kind
    if kind.upper() not in ("R", "W"):
        raise TraceError(f"line {line_number}: no R/W marker in {line!r}")
    try:
        address = int(address_text, 0)  # handles 0x..., 0o..., decimal
    except ValueError as exc:
        raise TraceError(
            f"line {line_number}: bad address {address_text!r}"
        ) from exc
    if address < 0:
        raise TraceError(f"line {line_number}: negative address {address}")
    return address, kind.upper()


def load_address_trace(
    path: str | Path,
    word_bytes: int = 4,
    address_range: tuple[int, int] | None = None,
) -> AccessTrace:
    """Load a two-column address dump into an item-granular trace."""
    path = Path(path)
    records: list[tuple[int, str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            parsed = parse_address_line(line, line_number)
            if parsed is not None:
                records.append(parsed)
    return items_from_addresses(
        records,
        word_bytes=word_bytes,
        address_range=address_range,
        name=path.stem,
    )


def save_address_trace(
    records: Sequence[tuple[int, str]],
    path: str | Path,
    comment: str | None = None,
) -> None:
    """Write ``(address, kind)`` records in the two-column dump format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if comment:
            handle.write(f"# {comment}\n")
        for address, kind in records:
            kind = AccessKind.parse(kind).value
            handle.write(f"{kind} 0x{address:x}\n")


def synthetic_address_stream(
    base: int = 0x1000,
    num_words: int = 32,
    num_accesses: int = 500,
    word_bytes: int = 4,
    locality: float = 0.8,
    seed: int = 0,
) -> list[tuple[int, str]]:
    """A seeded word-aligned address stream with tunable spatial locality.

    Stand-in for a real profiler dump in tests and examples.
    """
    import random

    if num_words <= 0 or num_accesses < 0:
        raise TraceError("num_words must be positive, num_accesses >= 0")
    rng = random.Random(seed)
    current = 0
    records: list[tuple[int, str]] = []
    for _ in range(num_accesses):
        if rng.random() < locality:
            current = max(0, min(num_words - 1, current + rng.randint(-2, 2)))
        else:
            current = rng.randrange(num_words)
        kind = "W" if rng.random() < 0.3 else "R"
        records.append((base + current * word_bytes, kind))
    return records
