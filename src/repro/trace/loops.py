"""Declarative loop-nest trace builder (affine-access DSL).

Embedded kernels are usually specified as loop nests with affine array
subscripts; this module builds :class:`AccessTrace` objects directly from
that specification, so custom studies don't need hand-instrumented Python:

>>> nest = LoopNest(
...     loops=[Loop("i", 0, 4), Loop("j", 0, 3)],
...     body=[
...         Ref("A", ("i", "j"), kind="R"),
...         Ref("B", ("j",), kind="R"),
...         Ref("C", ("i",), kind="W"),
...     ],
...     shapes={"A": (4, 3), "B": (3,), "C": (4,)},
... )
>>> trace = nest.trace()
>>> trace.item_sequence[:3]
('A[0]', 'B[0]', 'C[0]')

Subscripts are affine expressions over the loop variables, written either as
a bare variable name (``"i"``), an ``(coefficients, constant)`` pair such as
``({"i": 1, "j": -1}, 2)`` meaning ``i − j + 2``, or a plain integer.
Multi-dimensional references are linearised row-major against the declared
array shape.  Out-of-bounds subscripts raise :class:`TraceError` at build
time — catching the classic off-by-one before it pollutes a study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Union

from repro.errors import TraceError
from repro.trace.model import Access, AccessKind, AccessTrace

#: A subscript: loop variable, constant, or (coefficients, constant) affine form.
Subscript = Union[str, int, tuple]


@dataclass(frozen=True)
class Loop:
    """One loop level: ``for var in range(start, stop, step)``."""

    var: str
    start: int
    stop: int
    step: int = 1

    def __post_init__(self) -> None:
        if not self.var:
            raise TraceError("loop variable name must be non-empty")
        if self.step == 0:
            raise TraceError(f"loop {self.var}: step must be nonzero")

    def values(self) -> range:
        return range(self.start, self.stop, self.step)


@dataclass(frozen=True)
class Ref:
    """One array reference in the loop body."""

    array: str
    subscripts: tuple[Subscript, ...]
    kind: str = "R"

    def __post_init__(self) -> None:
        if not self.array:
            raise TraceError("array name must be non-empty")
        object.__setattr__(self, "subscripts", tuple(self.subscripts))
        object.__setattr__(self, "kind", AccessKind.parse(self.kind).value)

    def evaluate(self, bindings: Mapping[str, int]) -> tuple[int, ...]:
        """Concrete index tuple under the given loop-variable bindings."""
        indices = []
        for subscript in self.subscripts:
            indices.append(_evaluate_affine(subscript, bindings, self.array))
        return tuple(indices)


def _evaluate_affine(
    subscript: Subscript, bindings: Mapping[str, int], array: str
) -> int:
    if isinstance(subscript, int):
        return subscript
    if isinstance(subscript, str):
        if subscript not in bindings:
            raise TraceError(
                f"reference to {array}: unknown loop variable {subscript!r}"
            )
        return bindings[subscript]
    if isinstance(subscript, tuple) and len(subscript) == 2:
        coefficients, constant = subscript
        value = int(constant)
        for var, coefficient in coefficients.items():
            if var not in bindings:
                raise TraceError(
                    f"reference to {array}: unknown loop variable {var!r}"
                )
            value += int(coefficient) * bindings[var]
        return value
    raise TraceError(f"cannot interpret subscript {subscript!r} for {array}")


@dataclass
class LoopNest:
    """A perfect loop nest with a straight-line body of array references."""

    loops: Sequence[Loop]
    body: Sequence[Ref]
    shapes: Mapping[str, tuple[int, ...]]
    name: str = "loopnest"
    repetitions: int = 1
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.loops:
            raise TraceError("a loop nest needs at least one loop")
        if not self.body:
            raise TraceError("a loop nest needs at least one body reference")
        if self.repetitions < 1:
            raise TraceError("repetitions must be >= 1")
        names = [loop.var for loop in self.loops]
        if len(set(names)) != len(names):
            raise TraceError(f"duplicate loop variables: {names}")
        for ref in self.body:
            if ref.array not in self.shapes:
                raise TraceError(f"array {ref.array!r} has no declared shape")
            shape = self.shapes[ref.array]
            if len(ref.subscripts) != len(shape):
                raise TraceError(
                    f"{ref.array}: {len(ref.subscripts)} subscripts for a "
                    f"{len(shape)}-D array"
                )

    def _item(self, ref: Ref, indices: tuple[int, ...]) -> str:
        shape = self.shapes[ref.array]
        linear = 0
        for dimension, (index, extent) in enumerate(zip(indices, shape)):
            if not 0 <= index < extent:
                raise TraceError(
                    f"{ref.array}{list(indices)}: index {index} out of "
                    f"bounds for dimension {dimension} (extent {extent})"
                )
            linear = linear * extent + index
        return f"{ref.array}[{linear}]"

    def _iterate(self, level: int, bindings: dict, out: list[Access]) -> None:
        if level == len(self.loops):
            for ref in self.body:
                indices = ref.evaluate(bindings)
                out.append(Access(self._item(ref, indices), ref.kind))
            return
        loop = self.loops[level]
        for value in loop.values():
            bindings[loop.var] = value
            self._iterate(level + 1, bindings, out)
        del bindings[loop.var]

    def trace(self) -> AccessTrace:
        """Execute the nest symbolically and return its access trace."""
        accesses: list[Access] = []
        for _ in range(self.repetitions):
            self._iterate(0, {}, accesses)
        return AccessTrace(
            accesses,
            name=self.name,
            metadata={"dsl": "loopnest", **self.metadata},
        )

    def footprint_words(self) -> int:
        """Total declared array words (the SPM capacity the nest needs)."""
        total = 0
        for shape in self.shapes.values():
            words = 1
            for extent in shape:
                words *= extent
            total += words
        return total


def matmul_nest(size: int = 4, name: str = "dsl-matmul") -> LoopNest:
    """Reference nest: C[i,j] += A[i,k] * B[k,j] (ijk order)."""
    return LoopNest(
        loops=[
            Loop("i", 0, size),
            Loop("j", 0, size),
            Loop("k", 0, size),
        ],
        body=[
            Ref("A", ("i", "k"), "R"),
            Ref("B", ("k", "j"), "R"),
            Ref("C", ("i", "j"), "W"),
        ],
        shapes={
            "A": (size, size),
            "B": (size, size),
            "C": (size, size),
        },
        name=name,
    )


def stencil_nest(width: int = 16, name: str = "dsl-stencil") -> LoopNest:
    """Reference nest: 3-point stencil  out[i] = f(g[i-1], g[i], g[i+1])."""
    return LoopNest(
        loops=[Loop("i", 1, width - 1)],
        body=[
            Ref("g", (({"i": 1}, -1),), "R"),
            Ref("g", ("i",), "R"),
            Ref("g", (({"i": 1}, 1),), "R"),
            Ref("out", ("i",), "W"),
        ],
        shapes={"g": (width,), "out": (width,)},
        name=name,
    )
