"""Lightweight timing utilities for the perf benchmarks.

pytest-benchmark measures single callables well, but the perf-trajectory
artifacts (E9 runtime, E18 incremental throughput) need plain numbers they
can render into tables and persist as JSON — independent of the benchmark
plugin.  This module provides the minimal machinery:

* :func:`measure_throughput` — run an operation repeatedly for a minimum
  wall-clock window and report operations/second;
* :func:`speedup` — ratio of two throughputs;
* :class:`Stopwatch` — a context-manager ``perf_counter`` wrapper.

All of it is deliberately dependency-free so benchmark scripts and CI smoke
runs can import it anywhere.  Measurements additionally report into the
process metrics registry (:mod:`repro.obs.metrics`) so throughput windows
show up in run manifests; rates are clamped to
:data:`MIN_MEASURABLE_SECONDS` and therefore always finite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import OptimizationError
from repro.obs.metrics import get_registry

#: Smallest duration a throughput window is allowed to report.  A
#: zero-duration window (clock granularity, mocked timers) used to yield
#: ``inf`` ops/s, which is not a JSON number and poisoned every manifest
#: that serialized it; clamping keeps every rate finite.
MIN_MEASURABLE_SECONDS = 1e-9


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a throughput measurement."""

    operations: int
    seconds: float

    @property
    def ops_per_second(self) -> float:
        if not self.operations:
            return 0.0
        return self.operations / max(self.seconds, MIN_MEASURABLE_SECONDS)

    @property
    def seconds_per_op(self) -> float:
        if not self.operations:
            return float("nan")
        return self.seconds / self.operations

    def __str__(self) -> str:
        return (
            f"{self.operations} ops in {self.seconds:.3f}s "
            f"({self.ops_per_second:,.0f} ops/s)"
        )


class Stopwatch:
    """``perf_counter`` context manager: ``with Stopwatch() as sw: ...``."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.seconds = time.perf_counter() - self._start
        self._start = None


def measure_throughput(
    operation: Callable[[], object],
    min_seconds: float = 0.2,
    min_operations: int = 3,
    max_operations: int | None = None,
) -> ThroughputResult:
    """Operations/second of ``operation`` (one call = one operation).

    Calls the operation until both ``min_seconds`` of wall clock and
    ``min_operations`` calls have elapsed (or ``max_operations`` calls,
    whichever comes first), then reports the aggregate rate.  No warmup
    discard — callers measuring steady-state hot paths should invoke the
    operation once beforehand if first-call setup matters.
    """
    if min_seconds < 0:
        raise OptimizationError(
            f"min_seconds must be >= 0, got {min_seconds}"
        )
    if min_operations < 1:
        raise OptimizationError(
            f"min_operations must be >= 1, got {min_operations}"
        )
    if max_operations is not None and max_operations < min_operations:
        raise OptimizationError(
            "max_operations must be >= min_operations"
        )
    operations = 0
    start = time.perf_counter()
    while True:
        operation()
        operations += 1
        elapsed = time.perf_counter() - start
        if max_operations is not None and operations >= max_operations:
            break
        if elapsed >= min_seconds and operations >= min_operations:
            break
    result = ThroughputResult(operations=operations, seconds=elapsed)
    registry = get_registry()
    registry.inc("perf.measure_throughput.calls")
    registry.inc("perf.measure_throughput.operations", operations)
    registry.observe("perf.measure_throughput.seconds", elapsed)
    return result


def speedup(fast: ThroughputResult, slow: ThroughputResult) -> float:
    """How many times faster ``fast`` runs than ``slow`` (ops/s ratio)."""
    if slow.ops_per_second == 0.0:
        return float("inf")
    return fast.ops_per_second / slow.ops_per_second
