"""DWM scratchpad memory: placement-mapped, trace-driven simulation.

:class:`ScratchpadMemory` binds a :class:`~repro.core.placement.Placement`
to a DWM array and runs access traces against it.  Two engines share the
same cost semantics:

* :meth:`simulate` — counters-only engine; picks between the scalar
  per-access replay over :class:`~repro.dwm.array.DWMArrayModel` and the
  vectorized engine (:mod:`repro.memory.batch_sim`) via its ``engine``
  argument (``"auto"``/``"scalar"``/``"vectorized"``).
* :meth:`simulate_functional` — full engine over
  :class:`~repro.dwm.array.DWMArray`, additionally storing and checking word
  values (writes store a value, reads return the last value written).  Used
  by differential tests; identical shift counts by construction.

Per-trace work (placement validation, slot resolution, vectorized trace
resolution) is cached on the instance keyed by trace identity, so reusing
one SPM to replay the same trace many times pays those costs once.
"""

from __future__ import annotations

from repro.core.placement import Placement
from repro.dwm.array import DWMArray, DWMArrayModel
from repro.dwm.config import DWMConfig
from repro.errors import SimulationError
from repro.memory.result import SimulationResult
from repro.obs import get_registry, trace_span
from repro.trace.model import AccessTrace

#: ``engine="auto"`` switches to the vectorized engine at this many accesses;
#: below it the numpy setup costs more than the scalar loop saves.
VECTORIZED_MIN_ACCESSES = 2048


class ScratchpadMemory:
    """A DWM scratchpad with a fixed data placement."""

    def __init__(self, config: DWMConfig, placement: Placement) -> None:
        self.config = config
        self.placement = placement
        self._validated_trace: AccessTrace | None = None
        self._slots_trace: AccessTrace | None = None
        self._slots: dict[str, tuple[int, int]] | None = None
        self._batch_trace: AccessTrace | None = None
        self._batch = None
        #: Full report of the most recent fault-injected simulate() call
        #: (the details dict carries only the counters).
        self._last_fault_report = None

    @property
    def last_fault_report(self):
        """:class:`repro.dwm.faults.FaultInjectionReport` of the last
        fault-injected run, or ``None``."""
        return self._last_fault_report

    def _ensure_validated(self, trace: AccessTrace) -> None:
        """Validate placement coverage once per trace (identity-cached)."""
        if self._validated_trace is not trace:
            self.placement.validate(self.config, trace.items)
            self._validated_trace = trace

    def _slots_for(self, trace: AccessTrace) -> dict[str, tuple[int, int]]:
        """Resolve every trace item to (dbc, offset), validating coverage."""
        if self._slots_trace is trace and self._slots is not None:
            return self._slots
        self._ensure_validated(trace)
        slots = {
            item: (slot.dbc, slot.offset)
            for item, slot in self.placement.items()
        }
        self._slots_trace = trace
        self._slots = slots
        return slots

    def _batch_for(self, trace: AccessTrace):
        """Vectorized simulator with the trace resolved (identity-cached)."""
        if self._batch_trace is not trace:
            from repro.memory.batch_sim import BatchSimulator

            self._batch = BatchSimulator(trace)
            self._batch_trace = trace
        return self._batch

    def simulate(
        self,
        trace: AccessTrace,
        engine: str = "auto",
        fault_model=None,
        chunk_size: int | None = None,
        jobs: int | None = None,
    ) -> SimulationResult:
        """Run ``trace`` on the counters-only engine.

        ``engine`` selects the implementation: ``"scalar"`` replays access
        by access through :class:`DWMArrayModel`, ``"vectorized"`` uses the
        numpy engine of :mod:`repro.memory.batch_sim` (bit-identical
        counts), ``"streaming"`` scans fixed-size windows through
        :mod:`repro.memory.stream_sim` in bounded memory (``chunk_size``
        accesses per window; ``jobs > 1`` fans chunk scans over the
        persistent worker pool), and ``"auto"`` picks vectorized for
        in-memory traces of at least :data:`VECTORIZED_MIN_ACCESSES`
        accesses — or streaming when ``trace`` is a
        :class:`~repro.trace.binio.StreamingTrace`.

        ``fault_model`` (a :class:`repro.dwm.faults.FaultModel`) switches on
        Monte-Carlo shift-fault injection: a seeded fault schedule is drawn
        over the run's shift stream and replayed through the detection/
        correction model, and the resulting counters land in
        ``details["faults"]``.  The schedule is a pure function of (seed,
        trace, config) and the bit-identical cost stream, so both engines
        report the same faults.  Fault injection needs the materialised
        per-access cost stream, so it is not available on the streaming
        engine.
        """
        from repro.trace.binio import StreamingTrace

        if engine not in ("auto", "scalar", "vectorized", "streaming"):
            raise SimulationError(
                f"unknown simulation engine {engine!r}; "
                "expected 'auto', 'scalar', 'vectorized' or 'streaming'"
            )
        # The degradation chain streaming -> vectorized -> scalar engages
        # only for the policy-driven "auto" selection: an explicitly
        # requested engine is a user override the library must not
        # second-guess (e.g. streaming may be the only engine whose memory
        # footprint fits the box).
        auto_selected = engine == "auto"
        if isinstance(trace, StreamingTrace):
            if engine == "auto":
                engine = "streaming"
            elif engine != "streaming":
                raise SimulationError(
                    f"engine {engine!r} needs an in-memory trace; "
                    "use engine='streaming' (or materialise with "
                    "trace.to_trace())"
                )
        if engine == "streaming":
            if fault_model is not None:
                raise SimulationError(
                    "fault injection is not supported on the streaming "
                    "engine; use engine='vectorized' (per-access cost "
                    "streams need the materialised trace)"
                )
            from repro.memory.stream_sim import (
                DEFAULT_CHUNK_SIZE,
                simulate_streaming,
            )

            registry = get_registry()
            registry.inc("sim.runs", engine="streaming")
            registry.inc("sim.accesses", len(trace), engine="streaming")
            try:
                with trace_span("simulate", engine="streaming"):
                    self._ensure_validated(trace)
                    return simulate_streaming(
                        trace,
                        self.config,
                        self.placement,
                        chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
                        jobs=jobs,
                        validate=False,
                    )
            except Exception as exc:
                from repro.robust import is_recoverable, record_degradation

                if not auto_selected or not is_recoverable(exc):
                    raise
                record_degradation(
                    "engine",
                    "streaming",
                    "vectorized",
                    f"{type(exc).__name__}: {exc}",
                )
                # Materialising defeats streaming's memory bound, but the
                # counters are bit-identical across engines, so the run
                # still completes with the correct result.
                if isinstance(trace, StreamingTrace):
                    trace = trace.to_trace()
                engine = "auto"
        if engine == "auto":
            engine = (
                "vectorized"
                if len(trace) >= VECTORIZED_MIN_ACCESSES
                else "scalar"
            )
        registry = get_registry()
        registry.inc("sim.runs", engine=engine)
        registry.inc("sim.accesses", len(trace), engine=engine)
        if engine == "vectorized":
            try:
                with trace_span("simulate", engine="vectorized"):
                    self._ensure_validated(trace)
                    batch = self._batch_for(trace)
                    result = batch.simulate(
                        self.config, self.placement, validate=False
                    )
                    if fault_model is not None:
                        dbc_seq, cost_seq = batch.access_costs(
                            self.config, self.placement, validate=False
                        )
                        result.details["faults"] = self._inject_faults(
                            trace, fault_model, dbc_seq, cost_seq
                        )
                return result
            except Exception as exc:
                from repro.robust import is_recoverable, record_degradation

                if not auto_selected or not is_recoverable(exc):
                    raise
                record_degradation(
                    "engine",
                    "vectorized",
                    "scalar",
                    f"{type(exc).__name__}: {exc}",
                )
        with trace_span("simulate", engine="scalar") as span:
            slots = self._slots_for(trace)
            array = DWMArrayModel(self.config)
            max_access_shifts = 0
            dbc_seq: list[int] | None = [] if fault_model is not None else None
            cost_seq: list[int] | None = [] if fault_model is not None else None
            for access in trace:
                dbc, offset = slots[access.item]
                result = array.access(dbc, offset, is_write=access.is_write)
                if result.shifts > max_access_shifts:
                    max_access_shifts = result.shifts
                if dbc_seq is not None:
                    dbc_seq.append(dbc)
                    cost_seq.append(result.shifts)
            stats = array.stats()
        registry.observe("sim.scan.seconds", span.seconds, engine="scalar")
        details: dict = {"engine": "scalar"}
        if fault_model is not None:
            details["faults"] = self._inject_faults(
                trace, fault_model, dbc_seq, cost_seq
            )
        return SimulationResult(
            trace_name=trace.name,
            config_description=self.config.describe(),
            shifts=stats.shifts,
            reads=stats.reads,
            writes=stats.writes,
            per_dbc_shifts=tuple(stats.per_dbc_shifts),
            max_access_shifts=max_access_shifts,
            details=details,
        )

    def _inject_faults(self, trace, fault_model, dbc_seq, cost_seq) -> dict:
        """Run the Monte-Carlo injector over one engine's cost stream."""
        from repro.dwm.faults import injection_seed, run_injection

        report = run_injection(
            dbc_seq,
            cost_seq,
            self.config.num_dbcs,
            fault_model,
            injection_seed(fault_model, trace, self.config),
        )
        self._last_fault_report = report
        return report.as_details()

    def simulate_functional(self, trace: AccessTrace) -> SimulationResult:
        """Run ``trace`` on the full device model with data-integrity checks.

        Each write stores a per-item sequence number; each read verifies the
        stored value matches the last write to that item (or the initial
        zero).  A mismatch means the device model corrupted data and raises
        :class:`SimulationError`.
        """
        slots = self._slots_for(trace)
        array = DWMArray(self.config)
        expected: dict[str, int] = {}
        max_access_shifts = 0
        mask = (1 << self.config.bits_per_word) - 1
        next_token = 1
        for position, access in enumerate(trace):
            dbc, offset = slots[access.item]
            if access.is_write:
                token = next_token & mask
                next_token += 1
                result = array.write(dbc, offset, token)
                expected[access.item] = token
            else:
                result = array.read(dbc, offset)
                want = expected.get(access.item, 0)
                if result.value != want:
                    raise SimulationError(
                        f"data corruption at access #{position} "
                        f"({access.item}): read {result.value}, "
                        f"expected {want}"
                    )
            if result.shifts > max_access_shifts:
                max_access_shifts = result.shifts
        stats = array.stats()
        return SimulationResult(
            trace_name=trace.name,
            config_description=self.config.describe(),
            shifts=stats.shifts,
            reads=stats.reads,
            writes=stats.writes,
            per_dbc_shifts=tuple(stats.per_dbc_shifts),
            max_access_shifts=max_access_shifts,
            details={"functional": True},
        )


def simulate_placement(
    trace: AccessTrace,
    config: DWMConfig,
    placement: Placement,
    functional: bool = False,
    engine: str = "auto",
) -> SimulationResult:
    """Convenience wrapper: build the SPM and run one trace."""
    spm = ScratchpadMemory(config, placement)
    if functional:
        return spm.simulate_functional(trace)
    return spm.simulate(trace, engine=engine)
