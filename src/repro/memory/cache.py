"""DWM cache model (TapeCache-style substrate).

The journal extension of this research line applies shift-aware layout to
DWM *caches*, not just scratchpads.  This module builds that substrate: a
set-associative cache whose data array is made of DBCs — each set owns a
contiguous region of one DBC's word offsets, so which *way slot* a line
occupies determines its shift distance from the port.

Intra-set placement policies (the knob the literature studies):

* ``"static"`` — a fetched line stays in the slot it was filled into; slots
  are recycled by LRU.
* ``"promote"`` — on every hit the line swaps one slot toward the set's
  port-nearest position (the classical *transposition* self-organising
  heuristic), so hot lines gravitate to cheap slots at one swap per hit.
* ``"mru_at_port"`` — on every hit the line jumps straight to the
  port-nearest slot and the displaced lines shuffle down (move-to-front);
  maximum heat concentration, maximum reorganisation traffic.

Swapping lines inside a DBC costs device work too: each swapped pair incurs
two reads and two writes plus the shifts to reach both slots, all of which
the model charges, so the reported totals are honest about reorganisation
overhead (experiment E15).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dwm.config import DWMConfig
from repro.dwm.dbc import HeadModel
from repro.errors import ConfigError
from repro.trace.model import AccessTrace

PLACEMENT_POLICIES = ("static", "promote", "mru_at_port")


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of the DWM cache."""

    num_sets: int = 8
    ways: int = 8
    dbc_config: DWMConfig = field(
        default_factory=lambda: DWMConfig(words_per_dbc=8, num_dbcs=8)
    )

    def __post_init__(self) -> None:
        if self.num_sets <= 0:
            raise ConfigError(f"num_sets must be positive, got {self.num_sets}")
        if self.ways <= 0:
            raise ConfigError(f"ways must be positive, got {self.ways}")
        if self.ways > self.dbc_config.words_per_dbc:
            raise ConfigError(
                f"{self.ways} ways exceed the DBC's "
                f"{self.dbc_config.words_per_dbc} word offsets"
            )
        if self.num_sets > self.dbc_config.num_dbcs:
            raise ConfigError(
                f"{self.num_sets} sets exceed the array's "
                f"{self.dbc_config.num_dbcs} DBCs"
            )

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways


@dataclass(frozen=True)
class CacheResult:
    """Outcome of running one trace through the cache."""

    hits: int
    misses: int
    shifts: int
    reorg_shifts: int
    reorg_swaps: int
    policy: str

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    @property
    def shifts_per_access(self) -> float:
        if not self.accesses:
            return 0.0
        return self.shifts / self.accesses


class _CacheSet:
    """One set: LRU state plus the slot each resident line occupies."""

    __slots__ = ("slots", "lru", "slot_order")

    def __init__(self, ways: int, slot_order: list[int]) -> None:
        # slot_order[i] = DBC word offset of the i-th cheapest slot.
        self.slot_order = slot_order
        self.slots: dict[str, int] = {}  # line -> slot rank (index into order)
        self.lru: list[str] = []  # most recent last

    def touch(self, line: str) -> None:
        if line in self.lru:
            self.lru.remove(line)
        self.lru.append(line)

    def victim(self) -> str:
        return self.lru[0]


class DWMCache:
    """Set-associative cache with DWM data array and intra-set placement."""

    def __init__(
        self,
        geometry: CacheGeometry | None = None,
        policy: str = "promote",
    ) -> None:
        if policy not in PLACEMENT_POLICIES:
            raise ConfigError(
                f"unknown placement policy {policy!r}; "
                f"expected one of {PLACEMENT_POLICIES}"
            )
        self.geometry = geometry or CacheGeometry()
        self.policy = policy
        config = self.geometry.dbc_config
        self._heads = [HeadModel(config) for _ in range(self.geometry.num_sets)]
        # Rank the first `ways` offsets of each DBC by port proximity so the
        # cheapest slot is rank 0.
        slot_order = sorted(
            range(config.words_per_dbc),
            key=lambda offset: (
                min(abs(offset - port) for port in config.port_offsets),
                offset,
            ),
        )[: self.geometry.ways]
        self._sets = [
            _CacheSet(self.geometry.ways, slot_order)
            for _ in range(self.geometry.num_sets)
        ]
        self._hits = 0
        self._misses = 0
        self._reorg_shifts = 0
        self._reorg_swaps = 0

    # ------------------------------------------------------------------
    def _set_of(self, line: str) -> int:
        # zlib.crc32 is stable across processes (str.__hash__ is salted).
        import zlib

        return zlib.crc32(line.encode("utf-8")) % self.geometry.num_sets

    def _slot_offset(self, cache_set: _CacheSet, rank: int) -> int:
        return cache_set.slot_order[rank]

    def _access_slot(self, set_index: int, rank: int, is_write: bool) -> int:
        offset = self._slot_offset(self._sets[set_index], rank)
        return self._heads[set_index].access(offset, is_write=is_write).shifts

    def _swap_ranks(self, set_index: int, line_a: str, line_b: str) -> None:
        """Swap two resident lines' slots, charging the device work.

        Swaps happen right after a hit, while ``line_a``'s data is already
        buffered at the port: the controller reads the partner slot, writes
        the buffered line there, and writes the partner's data back into the
        freed slot — two extra port operations whose only shift cost is
        walking between the two slots (in-transit swap, as optimized DWM
        cache controllers implement it).
        """
        cache_set = self._sets[set_index]
        rank_a = cache_set.slots[line_a]
        rank_b = cache_set.slots[line_b]
        shifts = 0
        shifts += self._access_slot(set_index, rank_b, is_write=True)
        shifts += self._access_slot(set_index, rank_a, is_write=True)
        self._reorg_shifts += shifts
        self._reorg_swaps += 1
        cache_set.slots[line_a] = rank_b
        cache_set.slots[line_b] = rank_a

    def _promote(self, set_index: int, line: str) -> None:
        """Apply the configured intra-set reorganisation after a hit."""
        cache_set = self._sets[set_index]
        rank = cache_set.slots[line]
        if rank == 0 or self.policy == "static":
            return
        if self.policy == "promote":
            # Transposition: swap with the occupant one rank cheaper (if any).
            target_rank = rank - 1
            occupant = next(
                (
                    other
                    for other, other_rank in cache_set.slots.items()
                    if other_rank == target_rank
                ),
                None,
            )
            if occupant is None:
                cache_set.slots[line] = target_rank
            else:
                self._swap_ranks(set_index, line, occupant)
            return
        # mru_at_port: bubble the line to rank 0 via successive swaps.
        while cache_set.slots[line] > 0:
            target_rank = cache_set.slots[line] - 1
            occupant = next(
                (
                    other
                    for other, other_rank in cache_set.slots.items()
                    if other_rank == target_rank
                ),
                None,
            )
            if occupant is None:
                cache_set.slots[line] = target_rank
            else:
                self._swap_ranks(set_index, line, occupant)

    # ------------------------------------------------------------------
    def access(self, line: str, is_write: bool = False) -> int:
        """Access one cache line; returns the shifts this access incurred."""
        set_index = self._set_of(line)
        cache_set = self._sets[set_index]
        before_reorg = self._reorg_shifts
        if line in cache_set.slots:
            self._hits += 1
            shifts = self._access_slot(
                set_index, cache_set.slots[line], is_write
            )
            cache_set.touch(line)
            self._promote(set_index, line)
            return shifts + (self._reorg_shifts - before_reorg)
        # Miss: evict LRU if full, fill into the freed (or next free) slot.
        self._misses += 1
        if len(cache_set.slots) >= self.geometry.ways:
            victim = cache_set.victim()
            victim_rank = cache_set.slots.pop(victim)
            cache_set.lru.remove(victim)
            fill_rank = victim_rank
        else:
            used = set(cache_set.slots.values())
            fill_rank = next(
                rank for rank in range(self.geometry.ways) if rank not in used
            )
        shifts = self._access_slot(set_index, fill_rank, is_write=True)
        cache_set.slots[line] = fill_rank
        cache_set.touch(line)
        return shifts

    def run(self, trace: AccessTrace) -> CacheResult:
        """Run a whole trace (items are cache lines) and report totals."""
        total_shifts = 0
        for access in trace:
            total_shifts += self.access(access.item, access.is_write)
        return CacheResult(
            hits=self._hits,
            misses=self._misses,
            shifts=total_shifts,
            reorg_shifts=self._reorg_shifts,
            reorg_swaps=self._reorg_swaps,
            policy=self.policy,
        )


def compare_cache_policies(
    trace: AccessTrace,
    geometry: CacheGeometry | None = None,
) -> dict[str, CacheResult]:
    """Run one trace under every intra-set placement policy."""
    results = {}
    for policy in PLACEMENT_POLICIES:
        cache = DWMCache(geometry, policy=policy)
        results[policy] = cache.run(trace)
    return results
