"""Shared-memory publication of traces for persistent worker pools.

The worker-pool runtime (:mod:`repro.analysis.pool`) keeps workers alive
across many tasks, so shipping a full :class:`AccessTrace` inside every
task pickle — the dominant per-task cost of the old fork-per-task model —
is pure waste: the same trace crosses the process boundary once per task.
This module publishes a trace's *resolved* dense arrays (item index and
write flag per access, from :class:`~repro.memory.batch_sim.ResolvedTrace`)
into a :mod:`multiprocessing.shared_memory` segment exactly once, and hands
tasks a tiny picklable :class:`TraceHandle` instead.

Resolution of a handle back to a trace is tiered, cheapest first:

1. **In-process** — the publishing process (and any worker *forked after*
   publication, which inherits the registry) finds the original trace
   object through a weakref registry: zero copies, zero work.
2. **Attach** — other workers map the segment read-only, rebuild the trace
   via the trusted :meth:`AccessTrace._from_dense` constructor and seed the
   resolved-trace memo, then cache the attachment so subsequent tasks on
   the same trace are dictionary lookups.  Works under both ``fork`` and
   ``spawn`` start methods.

Segment layout: ``[item_at int64×n][is_write uint8×n][pickled meta]``
where the meta blob carries ``(name, metadata, items, fingerprint)``.

Lifecycle: segments are refcounted per publishing process.
:func:`publish_traces` is the intended entry point — a context manager
that publishes for the duration of a parallel run and releases in a
``finally``; :func:`unlink_all` is the big hammer for interrupt/atexit
paths (no leaked ``/dev/shm`` blocks).  On the worker side, attaching
registers the segment with the ``resource_tracker`` in CPython ≤ 3.12,
which would unlink it when the *worker* exits; the attach path
unregisters it again so ownership stays with the publisher.
"""

from __future__ import annotations

import atexit
import itertools
import pickle
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.chaos import failpoint
from repro.memory.batch_sim import ResolvedTrace, resolve_trace, seed_resolved
from repro.obs import get_registry
from repro.trace.model import AccessTrace

#: Worker-side attach cache size (segments kept mapped between tasks).
ATTACH_CACHE_SIZE = 8

#: token → weakref(AccessTrace): in-process resolution registry.  Entries
#: evict themselves when the trace is garbage-collected.
_LOCAL: dict[str, weakref.ref] = {}

#: shm name → [SharedMemory, refcount]: segments this process published.
_SEGMENTS: dict[str, list] = {}

#: id(trace) → (weakref(trace), shm name): dedupes concurrent publishes of
#: the same trace object onto one segment.
_BY_TRACE: dict[int, tuple] = {}

#: Worker-side attach cache: shm name → (SharedMemory, trace, resolved).
_ATTACHED: "OrderedDict[str, tuple]" = OrderedDict()

_local_counter = itertools.count()


class TraceHandle:
    """A picklable reference to a published (or in-process) trace.

    ``shm_name`` is ``None`` for local-only handles (serial runs publish
    nothing); such handles refuse to pickle, so accidentally shipping one
    to a pool worker degrades loudly through the pool's dispatch-error
    fallback instead of failing mysteriously in the worker.
    """

    __slots__ = ("shm_name", "token", "num_accesses", "meta_size", "_fp")

    def __init__(self, shm_name, token, num_accesses, meta_size, fp=None):
        self.shm_name = shm_name
        self.token = token
        self.num_accesses = num_accesses
        self.meta_size = meta_size
        self._fp = fp

    def __getstate__(self):
        if self.shm_name is None:
            raise pickle.PicklingError(
                "local-only TraceHandle cannot cross process boundaries; "
                "publish the trace first (repro.memory.shm.publish)"
            )
        return (
            self.shm_name, self.token, self.num_accesses,
            self.meta_size, self._fp,
        )

    def __setstate__(self, state):
        (self.shm_name, self.token, self.num_accesses,
         self.meta_size, self._fp) = state

    def __repr__(self) -> str:
        kind = self.shm_name or "local"
        return f"TraceHandle({kind}, n={self.num_accesses})"

    # -- resolution ----------------------------------------------------
    def trace(self) -> AccessTrace:
        """The trace behind this handle (in-process or attached)."""
        return _resolve(self)[0]

    def resolved(self) -> ResolvedTrace:
        """The canonical resolution of the trace behind this handle."""
        return _resolve(self)[1]

    def fingerprint(self) -> str:
        """Content fingerprint of the underlying trace.

        Computed (and cached) by the publisher, carried in the segment
        meta, so serial and pooled runs key checkpoints identically.
        """
        if self._fp is None:
            self._fp = self.trace().fingerprint()
        return self._fp


def _resolve(handle: TraceHandle):
    ref = _LOCAL.get(handle.token)
    if ref is not None:
        trace = ref()
        if trace is not None:
            return trace, resolve_trace(trace)
    if handle.shm_name is None:
        raise RuntimeError(
            "local-only TraceHandle resolved outside its publishing process"
        )
    _shm, trace, resolved = _attach(handle)
    return trace, resolved


def _register_local(trace: AccessTrace, token: str) -> None:
    # The registry is bound as a default so the callback stays valid
    # during interpreter shutdown, when module globals are cleared.
    def _evict(_ref, _token=token, _local=_LOCAL):
        _local.pop(_token, None)

    _LOCAL[token] = weakref.ref(trace, _evict)


def local_handle(trace: AccessTrace) -> TraceHandle:
    """An in-process handle (no segment): the serial-path counterpart."""
    token = f"local:{next(_local_counter)}"
    _register_local(trace, token)
    return TraceHandle(None, token, len(trace), 0, trace._fingerprint)


def publish(trace: AccessTrace) -> TraceHandle:
    """Publish ``trace`` into a shared-memory segment (refcounted).

    Publishing the same trace object again reuses the existing segment
    and bumps its refcount; every handle must be balanced by one
    :func:`release`.
    """
    from multiprocessing import shared_memory

    import numpy as np

    failpoint("shm.publish")
    entry = _BY_TRACE.get(id(trace))
    if entry is not None and entry[0]() is trace:
        name = entry[1]
        segment = _SEGMENTS.get(name)
        if segment is not None:
            segment[1] += 1
            shm, handle_proto = segment[0], segment[2]
            return TraceHandle(
                name, name, handle_proto[0], handle_proto[1], handle_proto[2]
            )
    resolved = resolve_trace(trace)
    seed_resolved(trace, resolved)
    n = int(resolved.item_at.size)
    meta = pickle.dumps(
        (
            trace.name,
            dict(trace.metadata),
            tuple(resolved.items),
            trace.fingerprint(),
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    total = max(1, 9 * n + len(meta))
    shm = shared_memory.SharedMemory(create=True, size=total)
    item_view = np.frombuffer(shm.buf, dtype=np.int64, count=n)
    item_view[:] = resolved.item_at
    write_view = np.frombuffer(shm.buf, dtype=np.uint8, count=n, offset=8 * n)
    write_view[:] = resolved.is_write.view(np.uint8)
    shm.buf[9 * n : 9 * n + len(meta)] = meta
    del item_view, write_view
    name = shm.name
    _SEGMENTS[name] = [shm, 1, (n, len(meta), trace.fingerprint())]
    _BY_TRACE[id(trace)] = (weakref.ref(trace), name)
    _register_local(trace, name)
    registry = get_registry()
    registry.inc("shm.published")
    registry.gauge("shm.segments", len(_SEGMENTS))
    return TraceHandle(name, name, n, len(meta), trace.fingerprint())


def release(handle: TraceHandle) -> None:
    """Drop one reference to ``handle``'s segment; unlink at zero."""
    if handle.shm_name is None:
        return
    segment = _SEGMENTS.get(handle.shm_name)
    if segment is None:
        return
    segment[1] -= 1
    if segment[1] > 0:
        return
    _SEGMENTS.pop(handle.shm_name, None)
    _LOCAL.pop(handle.token, None)
    shm = segment[0]
    try:
        shm.close()
    except BufferError:  # pragma: no cover - exported views still alive
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    get_registry().gauge("shm.segments", len(_SEGMENTS))


def unlink_all() -> int:
    """Unlink every segment this process published (interrupt/atexit).

    Returns the number of segments torn down.  Safe to call repeatedly.
    """
    count = 0
    for name in list(_SEGMENTS):
        segment = _SEGMENTS.pop(name, None)
        if segment is None:
            continue
        shm = segment[0]
        try:
            shm.close()
        except BufferError:  # pragma: no cover
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        count += 1
    _BY_TRACE.clear()
    if count:
        get_registry().gauge("shm.segments", 0)
    return count


def active_segments() -> list[str]:
    """Names of segments currently published by this process (tests)."""
    return sorted(_SEGMENTS)


@contextmanager
def publish_traces(
    traces: Sequence[AccessTrace], jobs: int
) -> Iterator[list[TraceHandle]]:
    """Handles for ``traces``, shared iff the run is parallel.

    With ``jobs > 1`` every trace is published to shared memory for the
    duration of the ``with`` block (released on exit, including on
    interrupt); serial runs get zero-cost local handles.
    """
    share = jobs > 1
    handles: list[TraceHandle] = []
    try:
        for trace in traces:
            handles.append(publish(trace) if share else local_handle(trace))
        yield handles
    finally:
        for handle in handles:
            release(handle)


def _attach(handle: TraceHandle):
    """Worker-side: map the segment and rebuild (trace, resolved) once."""
    from multiprocessing import shared_memory

    import numpy as np

    cached = _ATTACHED.get(handle.shm_name)
    if cached is not None:
        _ATTACHED.move_to_end(handle.shm_name)
        return cached
    failpoint("shm.attach")
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    try:
        # CPython ≤ 3.12 registers attachments with the resource tracker,
        # which would unlink the segment when *this* process exits; the
        # publisher owns cleanup, so undo the registration.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    n = handle.num_accesses
    item_at = np.frombuffer(shm.buf, dtype=np.int64, count=n)
    is_write = np.frombuffer(
        shm.buf, dtype=np.uint8, count=n, offset=8 * n
    ).view(np.bool_)
    name, metadata, items, fp = pickle.loads(
        bytes(shm.buf[9 * n : 9 * n + handle.meta_size])
    )
    trace = AccessTrace._from_dense(
        items, item_at, is_write, name=name, metadata=metadata, fingerprint=fp
    )
    resolved = ResolvedTrace.from_arrays(trace, items, item_at, is_write)
    seed_resolved(trace, resolved)
    _register_local(trace, handle.token)
    entry = (shm, trace, resolved)
    _ATTACHED[handle.shm_name] = entry
    get_registry().inc("shm.attaches")
    while len(_ATTACHED) > ATTACH_CACHE_SIZE:
        _evict_name, (old_shm, _t, _r) = _ATTACHED.popitem(last=False)
        _LOCAL.pop(_evict_name, None)
        try:
            old_shm.close()
        except BufferError:
            # numpy views still alive somewhere; the mapping stays until
            # process exit (bounded by the number of distinct traces).
            pass
    return entry


atexit.register(unlink_all)
