"""Full-system model: core + DWM scratchpad + background memory.

Ties the substrates together into the system a paper's end-to-end numbers
come from: an in-order core issues the trace; accesses to SPM-resident
items go through the overlapped DWM controller (per-DBC shift drivers,
shared data port); everything else goes to background memory (one channel,
fixed latency, pipelined up to a configurable depth).

Three system configurations answer the architectural questions:

* ``all_dram`` — no scratchpad at all (the lower baseline);
* ``spm(placement-oblivious)`` — scratchpad + knapsack allocation, items
  placed in declaration order;
* ``spm(shift-aware)`` — the same allocation with the paper's placement.

:func:`system_comparison` runs all three on one trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import AllocationResult, allocate
from repro.dwm.config import DWMConfig
from repro.dwm.dbc import HeadModel
from repro.errors import ConfigError
from repro.memory.timing import TimingParams
from repro.trace.model import AccessTrace


@dataclass(frozen=True)
class SystemParams:
    """Cycle parameters of the whole system."""

    timing: TimingParams = TimingParams()
    dram_cycles: int = 60
    dram_queue_depth: int = 4

    def __post_init__(self) -> None:
        if self.dram_cycles <= 0:
            raise ConfigError(f"dram_cycles must be positive, got {self.dram_cycles}")
        if self.dram_queue_depth < 1:
            raise ConfigError("dram_queue_depth must be >= 1")


@dataclass(frozen=True)
class SystemResult:
    """Outcome of one full-system run."""

    total_cycles: int
    spm_accesses: int
    dram_accesses: int
    spm_shift_cycles: int
    configuration: str

    @property
    def accesses(self) -> int:
        return self.spm_accesses + self.dram_accesses

    @property
    def cycles_per_access(self) -> float:
        if not self.accesses:
            return 0.0
        return self.total_cycles / self.accesses

    def speedup_over(self, other: "SystemResult") -> float:
        if self.total_cycles == 0:
            return float("inf") if other.total_cycles else 1.0
        return other.total_cycles / self.total_cycles


class SystemModel:
    """Event-driven timing of a core with an SPM and background memory."""

    def __init__(
        self,
        config: DWMConfig,
        allocation: AllocationResult | None,
        params: SystemParams | None = None,
        label: str = "system",
    ) -> None:
        self.config = config
        self.allocation = allocation
        self.params = params or SystemParams()
        self.label = label

    def run(self, trace: AccessTrace) -> SystemResult:
        params = self.params
        timing = params.timing
        heads = {dbc: HeadModel(self.config) for dbc in range(self.config.num_dbcs)}
        dbc_free = [0] * self.config.num_dbcs
        port_free = 0
        dram_channel_free = 0
        dram_inflight: list[int] = []
        issue_time = 0
        core_blocked_until = 0
        pending_stores: list[int] = []
        spm_accesses = 0
        dram_accesses = 0
        spm_shift_cycles = 0
        finish = 0
        for access in trace:
            issue = max(issue_time, core_blocked_until)
            pending_stores = [t for t in pending_stores if t > issue]
            if access.is_write and len(pending_stores) >= timing.store_queue_depth:
                issue = max(issue, min(pending_stores))
                pending_stores = [t for t in pending_stores if t > issue]
            resident = (
                self.allocation is not None
                and self.allocation.is_resident(access.item)
            )
            if resident:
                slot = self.allocation.placement[access.item]
                shifts = heads[slot.dbc].access(
                    slot.offset, is_write=access.is_write
                ).shifts
                shift_cycles = shifts * timing.shift_cycles
                spm_shift_cycles += shift_cycles
                shift_start = max(issue, dbc_free[slot.dbc])
                shift_end = shift_start + shift_cycles
                access_cycles = (
                    timing.write_cycles if access.is_write else timing.read_cycles
                )
                access_start = max(shift_end, port_free)
                access_end = access_start + access_cycles
                dbc_free[slot.dbc] = access_end
                port_free = access_end
                spm_accesses += 1
            else:
                # One background-memory channel, pipelined to queue depth.
                dram_inflight = [t for t in dram_inflight if t > issue]
                start = max(issue, dram_channel_free)
                if len(dram_inflight) >= params.dram_queue_depth:
                    start = max(start, min(dram_inflight))
                    dram_inflight = [t for t in dram_inflight if t > start]
                access_end = start + params.dram_cycles
                dram_channel_free = start + 1  # pipelined issue
                dram_inflight.append(access_end)
                dram_accesses += 1
            issue_time = issue + 1
            if access.is_write:
                pending_stores.append(access_end)
            elif timing.blocking_loads:
                core_blocked_until = access_end
            finish = max(finish, access_end)
        return SystemResult(
            total_cycles=finish,
            spm_accesses=spm_accesses,
            dram_accesses=dram_accesses,
            spm_shift_cycles=spm_shift_cycles,
            configuration=self.label,
        )


def system_comparison(
    trace: AccessTrace,
    config: DWMConfig,
    params: SystemParams | None = None,
    dram_latency_ns: float = 50.0,
) -> dict[str, SystemResult]:
    """all-DRAM vs SPM(oblivious placement) vs SPM(shift-aware placement)."""
    params = params or SystemParams()
    results: dict[str, SystemResult] = {}
    results["all_dram"] = SystemModel(
        config, allocation=None, params=params, label="all_dram"
    ).run(trace)
    for label, method in (
        ("spm_oblivious", "declaration"),
        ("spm_shift_aware", "heuristic"),
    ):
        allocation = allocate(
            trace,
            config,
            policy="oblivious",
            dram_latency_ns=dram_latency_ns,
            placement_method=method,
        )
        results[label] = SystemModel(
            config, allocation, params=params, label=label
        ).run(trace)
    return results
