"""Memory subsystem: DWM scratchpad simulator and SRAM comparator."""

from repro.memory.cache import (
    CacheGeometry,
    CacheResult,
    DWMCache,
    compare_cache_policies,
)
from repro.memory.hierarchy import (
    SystemModel,
    SystemParams,
    SystemResult,
    system_comparison,
)
from repro.memory.result import SimulationResult
from repro.memory.spm import ScratchpadMemory, simulate_placement
from repro.memory.sram import SRAMScratchpad
from repro.memory.timing import (
    TimingParams,
    TimingResult,
    TimingSimulator,
    overlap_benefit,
)

__all__ = [
    "CacheGeometry",
    "CacheResult",
    "DWMCache",
    "SRAMScratchpad",
    "ScratchpadMemory",
    "SimulationResult",
    "SystemModel",
    "SystemParams",
    "SystemResult",
    "TimingParams",
    "compare_cache_policies",
    "system_comparison",
    "TimingResult",
    "TimingSimulator",
    "overlap_benefit",
    "simulate_placement",
]
