"""Memory subsystem: DWM scratchpad simulator and SRAM comparator."""

from repro.memory.batch_sim import (
    BatchSimulator,
    ResolvedTrace,
    batch_simulate,
    simulate_vectorized,
)
from repro.memory.cache import (
    CacheGeometry,
    CacheResult,
    DWMCache,
    compare_cache_policies,
)
from repro.memory.hierarchy import (
    SystemModel,
    SystemParams,
    SystemResult,
    system_comparison,
)
from repro.memory.result import SimulationResult
from repro.memory.spm import ScratchpadMemory, simulate_placement
from repro.memory.stream_sim import (
    ChunkState,
    finalize_state,
    merge_states,
    scan_chunk,
    simulate_streaming,
)
from repro.memory.sram import SRAMScratchpad
from repro.memory.timing import (
    TimingParams,
    TimingResult,
    TimingSimulator,
    overlap_benefit,
)

__all__ = [
    "BatchSimulator",
    "ChunkState",
    "finalize_state",
    "merge_states",
    "scan_chunk",
    "simulate_streaming",
    "CacheGeometry",
    "CacheResult",
    "DWMCache",
    "ResolvedTrace",
    "SRAMScratchpad",
    "ScratchpadMemory",
    "SimulationResult",
    "SystemModel",
    "SystemParams",
    "SystemResult",
    "TimingParams",
    "compare_cache_policies",
    "system_comparison",
    "TimingResult",
    "TimingSimulator",
    "batch_simulate",
    "overlap_benefit",
    "simulate_placement",
    "simulate_vectorized",
]
