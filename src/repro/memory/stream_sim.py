"""Chunked out-of-core simulation engine with mergeable automaton state.

The vectorized engine (:mod:`repro.memory.batch_sim`) needs the whole
access stream as dense arrays; this module computes the identical result
while only ever holding one fixed-size window, so traces far larger than
RAM — opened through :class:`repro.trace.binio.StreamingTrace` — simulate
in bounded memory.

The per-DBC cost scan is a deterministic port automaton, so everything a
chunk needs from its past is one integer per DBC: the head position.
Three scan modes share the same per-chunk kernels
(:func:`~repro.core.incremental.lazy_costs_from_state`, and the rest-
distance table for eager policies):

* **sequential** (default) — chunks scanned in order, carrying the exact
  per-DBC head between chunks; one kernel call per chunk-DBC group.
* **merge** — each chunk is summarised *independently* into a
  :class:`ChunkState` whose lazy per-DBC entries are conditioned on the
  one unknown bit of context: which port serves the chunk's first access
  to that DBC (``P`` possibilities).  :func:`merge_states` composes two
  summaries by pricing the boundary access, which makes the summary an
  associative monoid — chunks can be folded in any order.
* **parallel** — the merge-mode map fanned out over the persistent
  worker pool (:mod:`repro.analysis.pool`), followed by the same cheap
  sequential stitch.  Workers re-map binary traces by path, so task
  payloads stay tiny.

All three are bit-identical to the in-memory vectorized engine on
totals, per-DBC decompositions and ``max_access_shifts`` (fuzzed by the
``streaming`` oracle family in :mod:`repro.verify.oracles`).  See
docs/STREAMING.md for the boundary-state math and chunk-size guidance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.incremental import lazy_costs_from_state
from repro.core.placement import Placement
from repro.dwm.config import DWMConfig, PortPolicy
from repro.errors import SimulationError
from repro.memory.result import SimulationResult
from repro.obs import get_registry
from repro.trace.binio import StreamingTrace, open_binary

#: Default window length (accesses per chunk).  At 4 bytes per record a
#: chunk's decoded arrays cost ~9 bytes/access, so the default keeps the
#: working set around a couple of MiB.
DEFAULT_CHUNK_SIZE = 1 << 18


@dataclass(frozen=True)
class LazyDBCState:
    """Summary of one chunk's accesses to one DBC under the lazy policy.

    ``totals``/``maxes``/``heads`` are indexed by the port that served the
    chunk's *first* access to this DBC — the only context the chunk cannot
    know on its own.  ``totals[p]`` is the exact cost of accesses 2..k
    given the first was served through port ``p`` (the first access's own
    cost is priced by the neighbour on the left during the merge, or from
    the fresh head 0 in :func:`finalize_state`)."""

    first_offset: int
    count: int
    totals: tuple[int, ...]
    maxes: tuple[int, ...]
    heads: tuple[int, ...]


@dataclass(frozen=True)
class EagerDBCState:
    """Summary of one chunk's accesses to one DBC under the eager policy.

    Eager costs are stateless, so the summary is just the exact partial
    totals — the merge is plain addition."""

    count: int
    total: int
    max_cost: int


@dataclass
class ChunkState:
    """Mergeable scan summary of one window of the access stream."""

    policy: str
    ports: tuple[int, ...]
    accesses: int
    writes: int
    dbcs: dict


def _rest_table(config: DWMConfig):
    """Eager per-offset cost table: twice the nearest-port distance."""
    import numpy as np

    ports = config.port_offsets
    return np.asarray(
        [
            2 * min(abs(offset - port) for port in ports)
            for offset in range(config.words_per_dbc)
        ],
        dtype=np.int64,
    )


def _dbc_groups(dbc_seq, offset_seq):
    """Yield ``(dbc, offsets)`` for each DBC present, in ascending DBC
    order, each group's offsets in stream order (stable sort)."""
    import numpy as np

    order = np.argsort(dbc_seq, kind="stable")
    sorted_dbc = dbc_seq[order]
    sorted_offsets = offset_seq[order]
    uniq, starts = np.unique(sorted_dbc, return_index=True)
    bounds = np.append(starts, sorted_dbc.size)
    for position, dbc in enumerate(uniq.tolist()):
        yield int(dbc), sorted_offsets[starts[position] : bounds[position + 1]]


def scan_chunk(item_at, is_write, config: DWMConfig, dbc_of, offset_of) -> ChunkState:
    """Summarise one window into a mergeable :class:`ChunkState`.

    Independent of every other chunk: lazy DBC groups are priced once per
    possible first-access port (``P`` kernel calls per group), eager ones
    once in total.
    """
    import numpy as np

    from repro.chaos import failpoint

    failpoint("stream.scan")
    ports = config.port_offsets
    state = ChunkState(
        policy=config.port_policy.value,
        ports=ports,
        accesses=int(item_at.size),
        writes=int(is_write.sum()),
        dbcs={},
    )
    if state.accesses == 0:
        return state
    dbc_seq = dbc_of[item_at]
    offset_seq = offset_of[item_at]
    if config.port_policy is PortPolicy.EAGER:
        costs = _rest_table(config)[offset_seq]
        totals = np.zeros(config.num_dbcs, dtype=np.int64)
        maxes = np.zeros(config.num_dbcs, dtype=np.int64)
        counts = np.zeros(config.num_dbcs, dtype=np.int64)
        np.add.at(totals, dbc_seq, costs)
        np.maximum.at(maxes, dbc_seq, costs)
        np.add.at(counts, dbc_seq, 1)
        for dbc in np.flatnonzero(counts).tolist():
            state.dbcs[dbc] = EagerDBCState(
                count=int(counts[dbc]),
                total=int(totals[dbc]),
                max_cost=int(maxes[dbc]),
            )
        return state
    for dbc, group in _dbc_groups(dbc_seq, offset_seq):
        first = int(group[0])
        rest = group[1:]
        totals, maxes, heads = [], [], []
        for port in ports:
            costs, head_out = lazy_costs_from_state(rest, ports, first - port)
            totals.append(int(costs.sum()) if costs.size else 0)
            maxes.append(int(costs.max()) if costs.size else 0)
            heads.append(head_out)
        state.dbcs[dbc] = LazyDBCState(
            first_offset=first,
            count=int(group.size),
            totals=tuple(totals),
            maxes=tuple(maxes),
            heads=tuple(heads),
        )
    return state


def _boundary_port(offset: int, ports: tuple[int, ...], head: int) -> tuple[int, int]:
    """Greedy port choice serving ``offset`` from ``head``.

    Returns ``(port_index, cost)``; ties resolve to the lowest port, the
    convention every engine in the repo shares (``ports`` is ascending).
    """
    best_cost = None
    best_index = 0
    for index, port in enumerate(ports):
        cost = abs(offset - port - head)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
    return best_index, best_cost


def merge_states(left: ChunkState, right: ChunkState) -> ChunkState:
    """Compose two adjacent chunk summaries (associative).

    For each DBC both sides touch, the only coupling is the right chunk's
    first access: its cost (and serving port) follow from the left chunk's
    exit head, which selects which of the right summary's ``P``
    conditioned interiors applies.
    """
    if left.accesses == 0:
        return right
    if right.accesses == 0:
        return left
    if left.policy != right.policy or left.ports != right.ports:
        raise SimulationError(
            "cannot merge chunk states from different configurations"
        )
    dbcs = dict(left.dbcs)
    for dbc, rstate in right.dbcs.items():
        lstate = dbcs.get(dbc)
        if lstate is None:
            dbcs[dbc] = rstate
            continue
        if left.policy == PortPolicy.EAGER.value:
            dbcs[dbc] = EagerDBCState(
                count=lstate.count + rstate.count,
                total=lstate.total + rstate.total,
                max_cost=max(lstate.max_cost, rstate.max_cost),
            )
            continue
        totals, maxes, heads = [], [], []
        for p1 in range(len(left.ports)):
            port_index, cost = _boundary_port(
                rstate.first_offset, left.ports, lstate.heads[p1]
            )
            totals.append(
                lstate.totals[p1] + cost + rstate.totals[port_index]
            )
            maxes.append(
                max(lstate.maxes[p1], cost, rstate.maxes[port_index])
            )
            heads.append(rstate.heads[port_index])
        dbcs[dbc] = LazyDBCState(
            first_offset=lstate.first_offset,
            count=lstate.count + rstate.count,
            totals=tuple(totals),
            maxes=tuple(maxes),
            heads=tuple(heads),
        )
    return ChunkState(
        policy=left.policy,
        ports=left.ports,
        accesses=left.accesses + right.accesses,
        writes=left.writes + right.writes,
        dbcs=dbcs,
    )


def finalize_state(
    state: ChunkState, config: DWMConfig
) -> tuple[list[int], int, int]:
    """Resolve a folded summary against the fresh initial head (0).

    Returns ``(per_dbc_shifts, total_shifts, max_access_shifts)`` —
    bit-identical to a single scan of the concatenated stream.
    """
    per_dbc = [0] * config.num_dbcs
    max_access = 0
    for dbc, dbc_state in state.dbcs.items():
        if state.policy == PortPolicy.EAGER.value:
            per_dbc[dbc] = dbc_state.total
            if dbc_state.max_cost > max_access:
                max_access = dbc_state.max_cost
            continue
        port_index, cost = _boundary_port(
            dbc_state.first_offset, state.ports, 0
        )
        per_dbc[dbc] = cost + dbc_state.totals[port_index]
        group_max = max(cost, dbc_state.maxes[port_index])
        if group_max > max_access:
            max_access = group_max
    return per_dbc, sum(per_dbc), max_access


# ---------------------------------------------------------------------------
# Chunk sources and the worker-side task
# ---------------------------------------------------------------------------

def _chunk_bounds(total: int, chunk_size: int) -> list[tuple[int, int]]:
    if chunk_size <= 0:
        raise SimulationError(f"chunk_size must be positive, got {chunk_size}")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


def _chunk_arrays(trace, start: int, stop: int):
    """Dense (item_at, is_write) for one window of either trace kind."""
    if isinstance(trace, StreamingTrace):
        return trace.chunk_arrays(start, stop)
    from repro.memory.batch_sim import resolve_trace

    resolved = resolve_trace(trace)
    return resolved.item_at[start:stop], resolved.is_write[start:stop]


def _slot_arrays_for(items, placement: Placement):
    """Per-item (dbc, offset) lookup arrays (streaming-trace variant of
    :func:`repro.memory.batch_sim._slot_arrays`)."""
    import numpy as np

    dbc_of = np.empty(len(items), dtype=np.int64)
    offset_of = np.empty(len(items), dtype=np.int64)
    for position, item in enumerate(items):
        slot = placement[item]
        dbc_of[position] = slot.dbc
        offset_of[position] = slot.offset
    return dbc_of, offset_of


#: Worker-process cache of opened binary traces, keyed by path; workers
#: are persistent (:mod:`repro.analysis.pool`), so each file is mapped
#: once per worker regardless of how many chunks it scans.
_WORKER_STREAMS: dict[str, StreamingTrace] = {}


def _scan_chunk_task(task):
    """Pool task: summarise one chunk (runs in a worker process)."""
    kind = task[0]
    if kind == "file":
        _kind, path, start, stop, config, dbc_of, offset_of = task
        stream = _WORKER_STREAMS.get(path)
        if stream is None:
            stream = open_binary(path)
            _WORKER_STREAMS[path] = stream
        item_at, is_write = stream.chunk_arrays(start, stop)
    else:
        _kind, item_at, is_write, config, dbc_of, offset_of = task
    return scan_chunk(item_at, is_write, config, dbc_of, offset_of)


# ---------------------------------------------------------------------------
# Engine entry point
# ---------------------------------------------------------------------------

def simulate_streaming(
    trace,
    config: DWMConfig,
    placement: Placement,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    jobs: int | None = None,
    validate: bool = True,
    force_merge: bool = False,
) -> SimulationResult:
    """Run a trace through the chunked streaming engine.

    ``trace`` may be a :class:`~repro.trace.binio.StreamingTrace` (the
    out-of-core case) or a plain :class:`~repro.trace.model.AccessTrace`
    (windowed over its resolved arrays — used by the conformance oracles).
    ``jobs > 1`` fans the per-chunk scans out over the persistent worker
    pool and stitches the summaries sequentially; ``force_merge`` uses the
    same map+stitch path in-process (testing hook for the merge algebra).
    Results are bit-identical to :func:`~repro.memory.batch_sim.simulate_vectorized`
    in every mode.
    """
    registry = get_registry()
    items = tuple(trace.items)
    if validate:
        placement.validate(config, items)
    dbc_of, offset_of = _slot_arrays_for(items, placement)
    total_accesses = len(trace)
    chunks = _chunk_bounds(total_accesses, chunk_size)
    parallel = bool(jobs and jobs > 1 and len(chunks) > 1)
    mode = "parallel" if parallel else ("merge" if force_merge else "sequential")
    scan_start = time.perf_counter()
    stitch_seconds = 0.0
    writes = 0
    if mode == "sequential":
        per_dbc = [0] * config.num_dbcs
        max_access = 0
        heads: dict[int, int] = {}
        rest = (
            _rest_table(config)
            if config.port_policy is PortPolicy.EAGER
            else None
        )
        for start, stop in chunks:
            from repro.chaos import failpoint

            failpoint("stream.scan")
            item_at, is_write = _chunk_arrays(trace, start, stop)
            writes += int(is_write.sum())
            dbc_seq = dbc_of[item_at]
            offset_seq = offset_of[item_at]
            if rest is not None:
                import numpy as np

                costs = rest[offset_seq]
                totals = np.zeros(config.num_dbcs, dtype=np.int64)
                np.add.at(totals, dbc_seq, costs)
                per_dbc = [
                    old + int(new) for old, new in zip(per_dbc, totals)
                ]
                if costs.size:
                    max_access = max(max_access, int(costs.max()))
                continue
            for dbc, group in _dbc_groups(dbc_seq, offset_seq):
                costs, head_out = lazy_costs_from_state(
                    group, config.port_offsets, heads.get(dbc, 0)
                )
                heads[dbc] = head_out
                per_dbc[dbc] += int(costs.sum())
                group_max = int(costs.max())
                if group_max > max_access:
                    max_access = group_max
    else:
        if parallel:
            from repro.analysis.pool import get_pool

            if isinstance(trace, StreamingTrace):
                tasks = [
                    ("file", str(trace.path), start, stop, config, dbc_of, offset_of)
                    for start, stop in chunks
                ]
            else:
                tasks = [
                    (
                        "arrays",
                        *_chunk_arrays(trace, start, stop),
                        config,
                        dbc_of,
                        offset_of,
                    )
                    for start, stop in chunks
                ]
            try:
                states = get_pool(jobs).run(
                    _scan_chunk_task, tasks, propagate=True
                )
            except Exception as exc:
                from repro.robust import is_recoverable, record_degradation

                if not is_recoverable(exc):
                    raise
                # Pool infrastructure failed; the chunk algebra is pure, so
                # rescanning in-process yields bit-identical results.
                record_degradation(
                    "stream",
                    "parallel",
                    "sequential",
                    f"{type(exc).__name__}: {exc}",
                )
                states = [
                    scan_chunk(
                        *_chunk_arrays(trace, start, stop),
                        config,
                        dbc_of,
                        offset_of,
                    )
                    for start, stop in chunks
                ]
        else:
            states = [
                scan_chunk(
                    *_chunk_arrays(trace, start, stop), config, dbc_of, offset_of
                )
                for start, stop in chunks
            ]
        stitch_start = time.perf_counter()
        folded = ChunkState(
            policy=config.port_policy.value,
            ports=config.port_offsets,
            accesses=0,
            writes=0,
            dbcs={},
        )
        for state in states:
            folded = merge_states(folded, state)
        per_dbc, _total, max_access = finalize_state(folded, config)
        writes = folded.writes
        stitch_seconds = time.perf_counter() - stitch_start
    scan_seconds = time.perf_counter() - scan_start
    try:
        import resource

        peak_rss_bytes = (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        )
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX
        peak_rss_bytes = 0
    registry.inc("stream.chunks", len(chunks))
    registry.observe("stream.scan.seconds", scan_seconds, mode=mode)
    registry.observe("stream.stitch.seconds", stitch_seconds, mode=mode)
    registry.observe("stream.peak_rss_bytes", peak_rss_bytes)
    return SimulationResult(
        trace_name=trace.name,
        config_description=config.describe(),
        shifts=sum(per_dbc),
        reads=total_accesses - writes,
        writes=writes,
        per_dbc_shifts=tuple(per_dbc),
        max_access_shifts=max_access,
        details={
            "engine": "streaming",
            "mode": mode,
            "chunk_size": int(chunk_size),
            "num_chunks": len(chunks),
            "jobs": int(jobs) if jobs else 1,
            "scan_seconds": scan_seconds,
            "stitch_seconds": stitch_seconds,
            "peak_rss_bytes": int(peak_rss_bytes),
        },
    )
