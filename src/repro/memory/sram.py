"""Iso-capacity SRAM scratchpad comparator.

SRAM has no shift operations, so its simulation degenerates to counting
reads and writes; it exists so the energy experiment (E6) can report DWM
results against the conventional-technology reference the paper's
motivation uses.
"""

from __future__ import annotations

from repro.dwm.energy import SRAMEnergyModel
from repro.memory.result import SimulationResult
from repro.trace.model import AccessTrace


class SRAMScratchpad:
    """Placement-insensitive scratchpad: every access costs the same."""

    def __init__(self, capacity_words: int, model: SRAMEnergyModel | None = None):
        self.capacity_words = capacity_words
        self.model = model or SRAMEnergyModel()

    def simulate(self, trace: AccessTrace) -> SimulationResult:
        """Count reads/writes; placement and order are irrelevant to SRAM."""
        reads, writes = trace.read_write_counts()
        return SimulationResult(
            trace_name=trace.name,
            config_description=f"SRAM[{self.capacity_words} words]",
            shifts=0,
            reads=reads,
            writes=writes,
        )
