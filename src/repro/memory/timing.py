"""Cycle-approximate timing simulation with per-DBC shift overlap.

The linear latency model of :mod:`repro.dwm.energy` serialises everything —
the conservative assumption used for the headline performance numbers.  Real
DWM scratchpad controllers can do better: each DBC has its own shift driver,
so the controller can *overlap* one DBC's shifting with another DBC's port
access; only the data port (the word-wide read/write beat) is shared.

:class:`TimingSimulator` models that controller as a small event simulator:

* every access first occupies its DBC's shift driver for
  ``shifts * shift_cycles`` cycles (starting when both the DBC is free and
  the request has been issued),
* then occupies the shared data port for ``read_cycles``/``write_cycles``,
* requests issue in order, one per cycle, from a simple in-order core that
  blocks on reads (loads) but can continue past writes up to a small store
  queue depth.

The simulator reports total cycles under both policies so the overlap
benefit is measurable (experiment E11); with ``overlap=False`` it reproduces
the serialised model exactly (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.placement import Placement
from repro.dwm.config import DWMConfig
from repro.errors import ConfigError
from repro.trace.model import AccessTrace


@dataclass(frozen=True)
class TimingParams:
    """Cycle costs of the scratchpad controller."""

    shift_cycles: int = 1
    read_cycles: int = 2
    write_cycles: int = 3
    store_queue_depth: int = 4
    blocking_loads: bool = True

    def __post_init__(self) -> None:
        for name in ("shift_cycles", "read_cycles", "write_cycles"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.store_queue_depth < 0:
            raise ConfigError("store_queue_depth must be >= 0")


@dataclass(frozen=True)
class TimingResult:
    """Outcome of a timed run."""

    total_cycles: int
    shift_cycles: int
    port_cycles: int
    accesses: int
    overlap: bool

    @property
    def cycles_per_access(self) -> float:
        if not self.accesses:
            return 0.0
        return self.total_cycles / self.accesses

    def speedup_over(self, other: "TimingResult") -> float:
        """How much faster this run is than ``other`` (>1 = faster)."""
        if self.total_cycles == 0:
            return float("inf") if other.total_cycles else 1.0
        return other.total_cycles / self.total_cycles


class TimingSimulator:
    """Times a trace on a placed DWM scratchpad, serialised or overlapped."""

    def __init__(
        self,
        config: DWMConfig,
        placement: Placement,
        params: TimingParams | None = None,
    ) -> None:
        self.config = config
        self.placement = placement
        self.params = params or TimingParams()

    def _per_access_shifts(self, trace: AccessTrace) -> list[tuple[int, int, bool]]:
        """(dbc, shifts, is_write) per access, from the exact cost model."""
        from repro.dwm.array import DWMArrayModel

        self.placement.validate(self.config, trace.items)
        array = DWMArrayModel(self.config)
        events = []
        for access in trace:
            slot = self.placement[access.item]
            result = array.access(slot.dbc, slot.offset, is_write=access.is_write)
            events.append((slot.dbc, result.shifts, access.is_write))
        return events

    def run(self, trace: AccessTrace, overlap: bool = True) -> TimingResult:
        """Simulate the trace; ``overlap=False`` reproduces the serial model."""
        params = self.params
        events = self._per_access_shifts(trace)
        total_shift_cycles = sum(s for _dbc, s, _w in events) * params.shift_cycles
        total_port_cycles = sum(
            params.write_cycles if is_write else params.read_cycles
            for _dbc, _s, is_write in events
        )
        if not overlap:
            return TimingResult(
                total_cycles=total_shift_cycles + total_port_cycles,
                shift_cycles=total_shift_cycles,
                port_cycles=total_port_cycles,
                accesses=len(events),
                overlap=False,
            )
        dbc_free = [0] * self.config.num_dbcs  # when each shift driver frees
        port_free = 0  # when the shared data port frees
        issue_time = 0  # in-order issue: 1 request per cycle earliest
        core_blocked_until = 0  # core stalls on loads
        pending_stores = []  # completion times of in-flight stores
        finish = 0
        for dbc, shifts, is_write in events:
            issue = max(issue_time, core_blocked_until)
            # Retire completed stores; block if the store queue is full.
            pending_stores = [t for t in pending_stores if t > issue]
            if is_write and len(pending_stores) >= params.store_queue_depth:
                issue = max(issue, min(pending_stores))
                pending_stores = [t for t in pending_stores if t > issue]
            shift_start = max(issue, dbc_free[dbc])
            shift_end = shift_start + shifts * params.shift_cycles
            access_cycles = (
                params.write_cycles if is_write else params.read_cycles
            )
            access_start = max(shift_end, port_free)
            access_end = access_start + access_cycles
            dbc_free[dbc] = access_end
            port_free = access_end
            issue_time = issue + 1
            if is_write:
                pending_stores.append(access_end)
            elif params.blocking_loads:
                core_blocked_until = access_end
            finish = max(finish, access_end)
        return TimingResult(
            total_cycles=finish,
            shift_cycles=total_shift_cycles,
            port_cycles=total_port_cycles,
            accesses=len(events),
            overlap=True,
        )


def overlap_benefit(
    trace: AccessTrace,
    config: DWMConfig,
    placement: Placement,
    params: TimingParams | None = None,
) -> tuple[TimingResult, TimingResult]:
    """(serialised, overlapped) timing results for one placed trace."""
    simulator = TimingSimulator(config, placement, params)
    return simulator.run(trace, overlap=False), simulator.run(trace, overlap=True)
