"""Vectorized batch simulation engine for DWM scratchpads.

The scalar engine (:meth:`ScratchpadMemory.simulate`) replays a trace one
access at a time through :class:`~repro.dwm.array.DWMArrayModel`, allocating
an ``AccessResult`` per access — exact, but interpreted Python all the way
down.  This module computes the identical result with numpy:

1. **Resolve once** (:class:`ResolvedTrace`): the trace is lowered to dense
   arrays — item index and read/write flag per access.  This is the only
   O(accesses) Python loop, and it is independent of config and placement,
   so it amortizes across every (config, placement) pair simulated against
   the same trace.
2. **Scan per run**: for a given placement the per-access (dbc, offset)
   sequences are gathers; accesses are grouped by DBC with a stable argsort
   (DBCs are independent, so each group replays in isolation); and each
   group's shift costs come from a closed-form scan — position diffs for
   lazy single-port, a rest-distance table for eager, and the vectorised
   port-state automaton from :mod:`repro.core.incremental`
   (:func:`~repro.core.incremental.two_port_access_costs` /
   :func:`~repro.core.incremental.multi_port_access_costs`) for lazy
   multi-port.

Every path produces per-access integer cost vectors, so totals, per-DBC
totals and ``max_access_shifts`` are all bit-identical to the scalar engine
(differential-tested in ``tests/test_batch_sim.py``).

Entry points: :func:`simulate_vectorized` for one run,
:class:`BatchSimulator` / :func:`batch_simulate` to amortize trace
resolution across many runs, and
``ScratchpadMemory.simulate(engine="vectorized")`` for drop-in use.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Sequence

from repro.core.incremental import (
    multi_port_access_costs,
    two_port_access_costs,
)
from repro.core.placement import Placement
from repro.dwm.config import DWMConfig, PortPolicy
from repro.memory.result import SimulationResult
from repro.obs import get_registry
from repro.trace.model import AccessTrace


class ResolvedTrace:
    """A trace lowered to dense numpy arrays, reusable across runs.

    Resolution is config- and placement-independent: it only fixes the
    item-index and read/write flag of every access.  Build it once (or let
    :class:`BatchSimulator` do it) and every subsequent simulation of the
    same trace skips the per-access Python loop entirely.
    """

    def __init__(self, trace: AccessTrace) -> None:
        import numpy as np

        start = time.perf_counter()
        self.trace = trace
        self.items: tuple[str, ...] = trace.items
        index = {item: position for position, item in enumerate(self.items)}
        length = len(trace)
        self.item_at = np.fromiter(
            (index[access.item] for access in trace), np.int64, length
        )
        self.is_write = np.fromiter(
            (access.is_write for access in trace), np.bool_, length
        )
        writes = int(self.is_write.sum())
        self.writes = writes
        self.reads = length - writes
        self.resolve_seconds = time.perf_counter() - start
        registry = get_registry()
        registry.inc("sim.resolves")
        registry.observe("sim.resolve.seconds", self.resolve_seconds)

    @classmethod
    def from_arrays(cls, trace: AccessTrace, items, item_at, is_write):
        """Trusted constructor from prebuilt dense arrays.

        Used by the shared-memory attach path
        (:mod:`repro.memory.shm`), where the arrays already exist in a
        published segment and re-deriving them from the trace object
        would repeat the O(accesses) Python loop the segment exists to
        avoid.  The caller guarantees the arrays describe ``trace``.
        """
        resolved = cls.__new__(cls)
        resolved.trace = trace
        resolved.items = tuple(items)
        resolved.item_at = item_at
        resolved.is_write = is_write
        resolved.writes = int(is_write.sum())
        resolved.reads = int(item_at.size) - resolved.writes
        resolved.resolve_seconds = 0.0
        get_registry().inc("sim.resolves", mode="attached")
        return resolved


def seed_resolved(trace: AccessTrace, resolved: ResolvedTrace) -> None:
    """Register ``resolved`` as the canonical resolution of ``trace``.

    The resolution is cached on the trace object itself, so its lifetime
    exactly matches the trace's and every later :func:`resolve_trace`
    call — sweep cells, shared-memory handles, simulators — reuses the
    same arrays.  The cache is dropped on pickling (see
    ``AccessTrace.__getstate__``) so it never bloats task payloads.
    """
    trace._resolved = resolved


#: Serialises first-time resolution so concurrent requests against the same
#: trace object (the placement server's normal case) build the dense arrays
#: exactly once.  A single process-wide lock suffices: resolution is quick
#: relative to the scans it enables, and the fast path below never takes it.
_RESOLVE_LOCK = threading.Lock()


def resolve_trace(trace: AccessTrace) -> ResolvedTrace:
    """The canonical :class:`ResolvedTrace` of ``trace``.

    Resolves at most once per trace object: the result is cached on the
    trace (see :func:`seed_resolved`), so repeated sweep cells over the
    same trace skip the per-access Python loop entirely.  Thread-safe:
    two concurrent callers racing on an unresolved trace still produce
    (and share) a single resolution.
    """
    cached = getattr(trace, "_resolved", None)
    if cached is not None:
        return cached
    with _RESOLVE_LOCK:
        cached = getattr(trace, "_resolved", None)
        if cached is not None:
            return cached
        resolved = ResolvedTrace(trace)
        trace._resolved = resolved
        return resolved


def _slot_arrays(resolved: ResolvedTrace, placement: Placement):
    """Per-item (dbc, offset) lookup arrays for one placement."""
    import numpy as np

    count = len(resolved.items)
    dbc_of = np.empty(count, dtype=np.int64)
    offset_of = np.empty(count, dtype=np.int64)
    for position, item in enumerate(resolved.items):
        slot = placement[item]
        dbc_of[position] = slot.dbc
        offset_of[position] = slot.offset
    return dbc_of, offset_of


def _single_port_costs(offsets, port: int):
    """Per-access lazy costs for one DBC with a single port."""
    import numpy as np

    targets = offsets if port == 0 else offsets - port
    costs = np.empty(targets.size, dtype=np.int64)
    costs[0] = abs(int(targets[0]))
    if targets.size > 1:
        np.abs(np.diff(targets), out=costs[1:])
    return costs


def _scan(
    resolved: ResolvedTrace,
    config: DWMConfig,
    dbc_of,
    offset_of,
) -> tuple[list[int], int, int]:
    """Compute (per_dbc_shifts, total_shifts, max_access_shifts)."""
    import numpy as np

    ports = config.port_offsets
    num_dbcs = config.num_dbcs
    per_dbc = [0] * num_dbcs
    max_access = 0
    if resolved.item_at.size == 0:
        return per_dbc, 0, 0
    dbc_seq = dbc_of[resolved.item_at]
    offset_seq = offset_of[resolved.item_at]
    if config.port_policy is PortPolicy.EAGER:
        # Stateless: every access costs twice its rest distance, so a table
        # gather gives per-access costs directly and per-DBC totals are an
        # integer scatter-add (exact, unlike float bincount weights).
        rest = np.asarray(
            [
                2 * min(abs(offset - port) for port in ports)
                for offset in range(config.words_per_dbc)
            ],
            dtype=np.int64,
        )
        costs = rest[offset_seq]
        max_access = int(costs.max())
        totals = np.zeros(num_dbcs, dtype=np.int64)
        np.add.at(totals, dbc_seq, costs)
        per_dbc = [int(value) for value in totals]
        return per_dbc, int(costs.sum()), max_access
    # Lazy: head state persists per DBC, so group the access stream by DBC
    # (stable sort preserves each DBC's internal order) and scan each group.
    order = np.argsort(dbc_seq, kind="stable")
    sorted_dbc = dbc_seq[order]
    sorted_offsets = offset_seq[order]
    boundaries = np.searchsorted(sorted_dbc, np.arange(num_dbcs + 1))
    num_ports = len(ports)
    for dbc in range(num_dbcs):
        low = int(boundaries[dbc])
        high = int(boundaries[dbc + 1])
        if high == low:
            continue
        group = sorted_offsets[low:high]
        if num_ports == 1:
            costs = _single_port_costs(group, ports[0])
        elif num_ports == 2:
            costs = two_port_access_costs(group, ports)
        else:
            costs = multi_port_access_costs(group, ports)
        per_dbc[dbc] = int(costs.sum())
        group_max = int(costs.max())
        if group_max > max_access:
            max_access = group_max
    return per_dbc, sum(per_dbc), max_access


def per_access_costs(
    trace: AccessTrace,
    config: DWMConfig,
    placement: Placement,
    *,
    resolved: ResolvedTrace | None = None,
    validate: bool = True,
):
    """Per-access ``(dbc, shift-cost)`` streams in trace order.

    Returns two equal-length ``int64`` arrays: the DBC index and the shift
    cost of every access.  Costs are the same bit-identical quantities the
    engines sum (``costs.sum() == SimulationResult.shifts``), but kept
    per-access so downstream consumers — the fault injector in
    :mod:`repro.dwm.faults` foremost — can attribute events to individual
    accesses regardless of which engine produced the totals.
    """
    import numpy as np

    if resolved is None or resolved.trace is not trace:
        resolved = resolve_trace(trace)
    if validate:
        placement.validate(config, resolved.items)
    dbc_of, offset_of = _slot_arrays(resolved, placement)
    if resolved.item_at.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    dbc_seq = dbc_of[resolved.item_at]
    offset_seq = offset_of[resolved.item_at]
    ports = config.port_offsets
    costs = np.empty(dbc_seq.size, dtype=np.int64)
    if config.port_policy is PortPolicy.EAGER:
        rest = np.asarray(
            [
                2 * min(abs(offset - port) for port in ports)
                for offset in range(config.words_per_dbc)
            ],
            dtype=np.int64,
        )
        costs[:] = rest[offset_seq]
        return dbc_seq, costs
    order = np.argsort(dbc_seq, kind="stable")
    sorted_dbc = dbc_seq[order]
    sorted_offsets = offset_seq[order]
    boundaries = np.searchsorted(sorted_dbc, np.arange(config.num_dbcs + 1))
    num_ports = len(ports)
    for dbc in range(config.num_dbcs):
        low = int(boundaries[dbc])
        high = int(boundaries[dbc + 1])
        if high == low:
            continue
        group = sorted_offsets[low:high]
        if num_ports == 1:
            group_costs = _single_port_costs(group, ports[0])
        elif num_ports == 2:
            group_costs = two_port_access_costs(group, ports)
        else:
            group_costs = multi_port_access_costs(group, ports)
        # Scatter the group's costs back to trace order.
        costs[order[low:high]] = group_costs
    return dbc_seq, costs


def simulate_vectorized(
    trace: AccessTrace,
    config: DWMConfig,
    placement: Placement,
    *,
    resolved: ResolvedTrace | None = None,
    validate: bool = True,
) -> SimulationResult:
    """Run ``trace`` through the vectorized engine.

    Bit-identical to ``ScratchpadMemory.simulate`` (scalar engine); see the
    module docstring.  Pass a prebuilt ``resolved`` (for the same trace) to
    skip trace resolution; ``validate=False`` skips placement validation
    when the caller has already checked coverage.

    ``details`` carries the perf counters ``resolve_seconds`` (0.0 when a
    prebuilt resolution was reused — the marginal cost of this call) and
    ``scan_seconds``.
    """
    if resolved is None or resolved.trace is not trace:
        resolved = resolve_trace(trace)
        resolve_seconds = resolved.resolve_seconds
    else:
        resolve_seconds = 0.0
    if validate:
        placement.validate(config, resolved.items)
    start = time.perf_counter()
    dbc_of, offset_of = _slot_arrays(resolved, placement)
    per_dbc, total, max_access = _scan(resolved, config, dbc_of, offset_of)
    scan_seconds = time.perf_counter() - start
    get_registry().observe("sim.scan.seconds", scan_seconds, engine="vectorized")
    return SimulationResult(
        trace_name=trace.name,
        config_description=config.describe(),
        shifts=total,
        reads=resolved.reads,
        writes=resolved.writes,
        per_dbc_shifts=tuple(per_dbc),
        max_access_shifts=max_access,
        details={
            "engine": "vectorized",
            "resolve_seconds": resolve_seconds,
            "scan_seconds": scan_seconds,
        },
    )


class BatchSimulator:
    """Simulate one trace against many (config, placement) pairs.

    Resolves the trace once at construction; each :meth:`simulate` call
    then costs only the vectorized scan.  This is the right tool for
    sweeps, design-space exploration, and optimizer loops that re-simulate
    the same trace under many candidate placements or geometries.
    """

    def __init__(self, trace: AccessTrace) -> None:
        self.trace = trace
        self.resolved = resolve_trace(trace)
        self._resolve_reported = False

    def access_costs(
        self,
        config: DWMConfig,
        placement: Placement,
        *,
        validate: bool = True,
    ):
        """Per-access (dbc, cost) streams, reusing the cached resolution."""
        return per_access_costs(
            self.trace,
            config,
            placement,
            resolved=self.resolved,
            validate=validate,
        )

    def simulate(
        self,
        config: DWMConfig,
        placement: Placement,
        *,
        validate: bool = True,
    ) -> SimulationResult:
        """Vectorized run of the resolved trace on one (config, placement)."""
        result = simulate_vectorized(
            self.trace,
            config,
            placement,
            resolved=self.resolved,
            validate=validate,
        )
        if not self._resolve_reported:
            # Attribute the one-off resolution cost to the first run so the
            # resolve-vs-scan split stays observable through the batch API.
            result.details["resolve_seconds"] = self.resolved.resolve_seconds
            self._resolve_reported = True
        return result


def batch_simulate(
    trace: AccessTrace,
    runs: Iterable[tuple[DWMConfig, Placement]] | Sequence[tuple[DWMConfig, Placement]],
) -> list[SimulationResult]:
    """Simulate ``trace`` under each (config, placement) pair, in order."""
    simulator = BatchSimulator(trace)
    return [simulator.simulate(config, placement) for config, placement in runs]
