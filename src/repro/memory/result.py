"""Simulation results: event counts plus derived energy/latency figures."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dwm.energy import (
    DWMEnergyModel,
    EnergyBreakdown,
    SRAMEnergyModel,
)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of running one trace on one scratchpad configuration."""

    trace_name: str
    config_description: str
    shifts: int
    reads: int
    writes: int
    per_dbc_shifts: tuple[int, ...] = ()
    max_access_shifts: int = 0
    details: dict = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def shifts_per_access(self) -> float:
        if not self.accesses:
            return 0.0
        return self.shifts / self.accesses

    def energy(self, model: DWMEnergyModel | None = None) -> EnergyBreakdown:
        """DWM energy/latency of this run under the given model."""
        model = model or DWMEnergyModel()
        return model.evaluate(self.shifts, self.reads, self.writes)

    def sram_reference(self, model: SRAMEnergyModel | None = None) -> EnergyBreakdown:
        """Energy/latency of the same access stream on an SRAM scratchpad."""
        model = model or SRAMEnergyModel()
        return model.evaluate(self.reads, self.writes)

    def normalized_shifts(self, baseline: "SimulationResult") -> float:
        """Shift count relative to a baseline run (lower is better)."""
        if baseline.shifts == 0:
            return 0.0 if self.shifts == 0 else float("inf")
        return self.shifts / baseline.shifts

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Latency improvement factor vs a baseline run (>1 is faster)."""
        ours = self.energy().latency_ns
        theirs = baseline.energy().latency_ns
        if ours == 0:
            return float("inf") if theirs > 0 else 1.0
        return theirs / ours
