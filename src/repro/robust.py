"""Unified graceful-degradation layer (``repro.robust``).

The stack has several places where a *better* implementation can fail for
infrastructure reasons and a *simpler* one still produces the identical
answer: the streaming engine falls back to the vectorized one, compiled
kernels to numpy, pooled maps to serial maps, corrupt cache entries to
recomputation, torn binary traces to their salvaged prefix.  Before this
module those fallbacks were scattered ad-hoc ``except`` clauses with
inconsistent logging and no observability.  This module centralises:

* the **degradation chains** (:data:`DEGRADATION_CHAINS`) — the declarative
  map of what falls back to what, in order;
* the **recoverability policy** (:func:`is_recoverable`) — which failures
  justify degrading.  Only *infrastructure* failures qualify (I/O errors,
  memory pressure, dead pool workers, injected chaos faults).  *Semantic*
  errors (:class:`~repro.errors.ConfigError`,
  :class:`~repro.errors.SimulationError`, …) must propagate: a fallback
  engine would deterministically reproduce them, so degrading only hides
  bugs;
* the **accounting** (:func:`record_degradation`) — every downgrade
  increments the ``robust.degradations`` counter (labelled by domain and
  edge) in :mod:`repro.obs`, which the run manifest picks up automatically,
  and is kept in a bounded in-process event log for reports;
* :func:`run_with_fallbacks` — the one loop that walks a chain.

The chaos harness (:mod:`repro.chaos`) exists to prove these chains
actually engage; ``docs/RELIABILITY.md`` documents the chain table.
"""

from __future__ import annotations

import signal
import threading
import warnings
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.errors import ArtifactError, InjectedFaultError, ReproError

__all__ = [
    "DEGRADATION_CHAINS",
    "DegradationEvent",
    "degradation_events",
    "degradation_summary",
    "install_sigterm_handler",
    "is_recoverable",
    "record_degradation",
    "reset_degradations",
    "run_with_fallbacks",
]

T = TypeVar("T")

#: Declarative fallback chains, best-first.  Every edge ``chain[i] ->
#: chain[i+1]`` preserves results bit-for-bit; only throughput (or, for
#: ``trace``, completeness — with an explicit salvage marker) degrades.
DEGRADATION_CHAINS: dict[str, tuple[str, ...]] = {
    # Simulation engine (repro.memory.spm.ScratchpadMemory.simulate)
    "engine": ("streaming", "vectorized", "scalar"),
    # Streaming scan mode (repro.memory.stream_sim.simulate_streaming)
    "stream": ("parallel", "sequential"),
    # Cost kernels (repro.core.kernels)
    "kernel": ("numba", "cc", "numpy"),
    # MinLA/ILP solver backends (repro.core.cpsat.solve_minla): CP-SAT when
    # the optional ortools dependency is installed, else the subset DP,
    # else budget-guarded permutation enumeration.
    "ilp": ("cpsat", "dp", "enumeration"),
    # Task fan-out (repro.analysis.parallel)
    "map": ("pooled", "serial"),
    # Result cache (repro.analysis.cache)
    "cache": ("entry", "quarantine+recompute"),
    # Binary traces (repro.fsck)
    "trace": ("full", "salvaged-prefix"),
    # Service request coalescing (repro.serve.batching): a recoverable
    # batched-pass failure retries per-request; admission shedding
    # (typed 429/503) is the terminal level, never an unbounded queue.
    "serve": ("batched", "single", "shed"),
}

#: Cap on the in-process event log (counters in obs are unbounded).
_MAX_EVENTS = 256


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded downgrade along a chain."""

    domain: str
    from_level: str
    to_level: str
    reason: str


_EVENTS: list[DegradationEvent] = []
_EVENTS_LOCK = threading.Lock()
_WARNED: set[tuple[str, str, str]] = set()


def is_recoverable(exc: BaseException) -> bool:
    """Whether ``exc`` is an infrastructure failure a fallback may absorb.

    Recoverable: OS/IO errors, memory pressure, timeouts, dead or
    unreachable pool workers, corrupt-artifact errors, and injected chaos
    faults.  Not recoverable: semantic :class:`~repro.errors.ReproError`
    subclasses (bad config, invalid placement, simulator inconsistency) —
    and anything else, e.g. ``KeyboardInterrupt`` or plain bugs
    (``TypeError``), which must surface unchanged.
    """
    if isinstance(exc, (InjectedFaultError, ArtifactError)):
        return True
    if isinstance(exc, ReproError):
        return False
    if isinstance(exc, (OSError, MemoryError, TimeoutError, EOFError)):
        return True
    # Pool errors live in analysis.pool which imports obs; import lazily
    # to keep repro.robust dependency-free at import time.
    from repro.analysis.pool import PoolCrashError, PoolDispatchError

    return isinstance(exc, (PoolCrashError, PoolDispatchError))


def record_degradation(
    domain: str,
    from_level: str,
    to_level: str,
    reason: str = "",
    *,
    warn: bool = True,
) -> DegradationEvent:
    """Account for one downgrade: obs counter, event log, one-time warning.

    The counter ``robust.degradations{domain=,edge=}`` flows into every run
    manifest via the registry snapshot, so unattended runs leave an audit
    trail of what silently slowed down.  Call sites that already emit
    their own warning pass ``warn=False``.
    """
    event = DegradationEvent(domain, from_level, to_level, reason)
    from repro.obs import get_registry

    get_registry().inc(
        "robust.degradations", domain=domain, edge=f"{from_level}->{to_level}"
    )
    with _EVENTS_LOCK:
        if len(_EVENTS) < _MAX_EVENTS:
            _EVENTS.append(event)
    key = (domain, from_level, to_level)
    if warn and key not in _WARNED:
        _WARNED.add(key)
        warnings.warn(
            f"degraded {domain}: {from_level} -> {to_level}"
            + (f" ({reason})" if reason else ""),
            RuntimeWarning,
            stacklevel=2,
        )
    return event


def degradation_events() -> tuple[DegradationEvent, ...]:
    """The in-process downgrade log (bounded to ``_MAX_EVENTS`` events)."""
    with _EVENTS_LOCK:
        return tuple(_EVENTS)


def degradation_summary() -> dict[str, int]:
    """``{"domain:from->to": count}`` over the in-process event log."""
    summary: dict[str, int] = {}
    for event in degradation_events():
        key = f"{event.domain}:{event.from_level}->{event.to_level}"
        summary[key] = summary.get(key, 0) + 1
    return summary


def reset_degradations() -> None:
    """Clear the event log and re-arm one-time warnings (for tests)."""
    with _EVENTS_LOCK:
        _EVENTS.clear()
    _WARNED.clear()


def run_with_fallbacks(
    domain: str,
    attempts: Sequence[tuple[str, Callable[[], T]]],
    *,
    recoverable: Callable[[BaseException], bool] | None = None,
    warn: bool = True,
) -> T:
    """Run ``attempts`` (``(level_name, thunk)`` pairs) best-first.

    Each recoverable failure records a degradation and moves to the next
    level; a non-recoverable failure — or a failure of the last level —
    propagates unchanged.
    """
    if not attempts:
        raise ValueError("run_with_fallbacks needs at least one attempt")
    check = recoverable if recoverable is not None else is_recoverable
    last = len(attempts) - 1
    for index, (level, thunk) in enumerate(attempts):
        try:
            return thunk()
        except BaseException as exc:
            if index == last or not check(exc):
                raise
            record_degradation(
                domain,
                level,
                attempts[index + 1][0],
                f"{type(exc).__name__}: {exc}",
                warn=warn,
            )
    raise AssertionError("unreachable")


def install_sigterm_handler() -> None:
    """Route ``SIGTERM`` through the ``KeyboardInterrupt`` cleanup path.

    The CLI already tears everything down on ``KeyboardInterrupt`` (flush
    journals, shut pools, unlink shm); converting SIGTERM to the same
    exception gives e.g. a container runtime's ``docker stop`` the same
    guarantees.  No-op outside the main thread or where SIGTERM does not
    exist.
    """
    if threading.current_thread() is not threading.main_thread():
        return
    sigterm = getattr(signal, "SIGTERM", None)
    if sigterm is None:
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt

    signal.signal(sigterm, _handler)
