"""Persistent worker-pool runtime behind the parallel primitives.

The original orchestration layer paid process-spawn plus full task-pickle
costs *per task attempt* — measured at E19 scale, more than the tasks
themselves, which is how a ``--jobs 4`` sweep clocked a 0.42× "speedup".
This module keeps a pool of long-lived workers per ``(start method, size)``
and feeds them over duplex pipes; traces cross the boundary once via
:mod:`repro.memory.shm` handles instead of per task.

Scheduling preserves the documented :func:`repro.analysis.parallel`
semantics on top of persistence:

* **order** — results land at their task's index regardless of completion
  order;
* **timeouts** — a worker whose task exceeds its deadline is terminated
  (a hung task cannot be cancelled cooperatively) and replaced with a
  fresh worker; the task retries elsewhere if it has budget left;
* **retries** — failed attempts back off exponentially and re-dispatch,
  always to a live worker (a crashed worker never sees the task again);
* **failure isolation** — exhausted tasks yield
  :class:`~repro.analysis.parallel.TaskFailure` records in place;
* **checkpointing** — ``on_result`` fires in the parent per success, so
  journals see completions exactly as before.

Two failure channels deliberately escape to the caller:
:class:`PoolDispatchError` (the function or a task cannot be pickled into
workers — the caller falls back to serial, loudly) and
:class:`PoolCrashError` in propagate mode (a worker died under a
plain ``parallel_map``, which has no retry budget).  Any other unexpected
exception — ``KeyboardInterrupt`` foremost — tears the pool down before
propagating so no workers or segments outlive the batch.
"""

from __future__ import annotations

import atexit
import pickle
import time
from collections import deque

from repro.chaos import failpoint
from repro.obs import get_registry

#: Grace period when retiring workers before escalating to SIGKILL.
_JOIN_TIMEOUT = 5.0


class PoolDispatchError(RuntimeError):
    """The task function or a task payload cannot reach pool workers."""


class PoolCrashError(RuntimeError):
    """A pool worker died mid-task in propagate (no-retry) mode."""


def _encode_error(exc: BaseException):
    """The exception itself when picklable, else its rendered message."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return f"{type(exc).__name__}: {exc}"


def _pool_worker_main(conn) -> None:
    """Worker body: loop over (index, fn, task) messages until sentinel."""
    from repro.analysis.parallel import _worker_init

    _worker_init()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, fn, task = message
        try:
            failpoint("pool.task")
            payload = ("ok", index, fn(task))
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            payload = ("err", index, _encode_error(exc))
        try:
            conn.send(payload)
        except Exception:
            # Unpicklable *result*: report the failure instead of dying
            # (dying would read as a crash and burn a retry for nothing).
            try:
                conn.send(
                    ("err", index, f"task #{index} returned an unpicklable result")
                )
            except Exception:
                break
    try:
        conn.close()
    except Exception:
        pass


class _Worker:
    __slots__ = ("proc", "conn", "deadline")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.deadline: float | None = None


class WorkerPool:
    """A fixed-size pool of persistent worker processes."""

    def __init__(self, size: int, start_method: str) -> None:
        import multiprocessing

        self.size = size
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: dict[int, _Worker] = {}
        self._next_wid = 0
        self._closed = False
        for _ in range(size):
            self._spawn()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _spawn(self) -> int:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # Stamp the chaos generation before creating the process so the
        # child (fork or spawn) sees its own spawn index — kill failpoints
        # use it to avoid crash-looping replacement workers.
        import os as _os

        from repro.chaos import GENERATION_ENV

        _os.environ[GENERATION_ENV] = str(self._next_wid)
        proc = self._ctx.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        _os.environ.pop(GENERATION_ENV, None)
        child_conn.close()
        wid = self._next_wid
        self._next_wid += 1
        self._workers[wid] = _Worker(proc, parent_conn)
        get_registry().inc("pool.workers.spawned")
        return wid

    def _retire(self, wid: int, terminate: bool = False) -> None:
        worker = self._workers.pop(wid, None)
        if worker is None:
            return
        try:
            worker.conn.close()
        except Exception:
            pass
        if terminate and worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=_JOIN_TIMEOUT if terminate else 0.5)
        if worker.proc.is_alive():  # pragma: no cover - stubborn worker
            worker.proc.kill()
            worker.proc.join(timeout=1.0)
        get_registry().inc("pool.workers.retired")

    def _ensure_workers(self) -> None:
        """Replace workers that died between runs; top up to ``size``."""
        for wid in list(self._workers):
            if not self._workers[wid].proc.is_alive():
                self._retire(wid)
        while len(self._workers) < self.size:
            self._spawn()

    def close(self, terminate: bool = False) -> None:
        """Shut every worker down (graceful sentinel unless ``terminate``)."""
        if self._closed:
            return
        self._closed = True
        if not terminate:
            for worker in self._workers.values():
                try:
                    worker.conn.send(None)
                except Exception:
                    pass
        for wid in list(self._workers):
            self._retire(wid, terminate=terminate)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, wid: int, fn, task, index: int, timeout) -> int:
        """Send one task; returns the worker id actually used.

        A worker found dead at send time is replaced transparently (the
        task has not run anywhere yet, so this costs no retry budget).
        """
        for attempt in range(2):
            worker = self._workers[wid]
            try:
                failpoint("pool.dispatch")
                worker.conn.send((index, fn, task))
                worker.deadline = (
                    time.monotonic() + timeout if timeout is not None else None
                )
                return wid
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                raise PoolDispatchError(f"{type(exc).__name__}: {exc}") from exc
            except OSError as exc:
                self._retire(wid)
                if attempt:
                    raise PoolDispatchError(
                        f"cannot reach pool workers: {exc}"
                    ) from exc
                wid = self._spawn()
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run(
        self,
        fn,
        tasks: list,
        *,
        timeout: float | None = None,
        retries: int = 0,
        backoff_seconds: float = 0.05,
        on_result=None,
        propagate: bool = False,
    ) -> list:
        """Execute ``tasks`` on the pool; see the module docstring.

        With ``propagate=True`` (the ``parallel_map`` contract) the first
        failing task's exception is re-raised after the batch drains;
        otherwise failures become :class:`TaskFailure` records honouring
        ``retries``/``timeout``/``backoff_seconds``.
        """
        from multiprocessing.connection import wait as _wait

        from repro.analysis.parallel import TaskFailure

        registry = get_registry()
        n = len(tasks)
        results: list = [None] * n
        if n == 0:
            return results
        self._ensure_workers()
        pending: deque[int] = deque(range(n))
        ready_at: dict[int, float] = {}
        attempts: dict[int, int] = {}
        errors: dict[int, BaseException] = {}
        inflight: dict[int, int] = {}
        idle: deque[int] = deque(self._workers)
        completed = 0

        def record_failure(index: int, kind: str, payload) -> None:
            nonlocal completed
            attempts[index] = attempts.get(index, 0) + 1
            if propagate:
                if isinstance(payload, BaseException):
                    errors[index] = payload
                elif kind == "crash":
                    errors[index] = PoolCrashError(str(payload))
                else:
                    errors[index] = RuntimeError(str(payload))
                completed += 1
                return
            if attempts[index] > retries:
                message = (
                    payload
                    if isinstance(payload, str)
                    else f"{type(payload).__name__}: {payload}"
                )
                results[index] = TaskFailure(
                    index=index,
                    error=message,
                    attempts=attempts[index],
                    kind=kind,
                )
                registry.inc("resilient.failures", kind=kind)
                completed += 1
            else:
                registry.inc("resilient.retries")
                ready_at[index] = time.monotonic() + backoff_seconds * (
                    2 ** (attempts[index] - 1)
                )
                pending.append(index)

        try:
            while completed < n:
                now = time.monotonic()
                for _ in range(len(pending)):
                    if not idle:
                        break
                    index = pending.popleft()
                    if ready_at.get(index, 0.0) > now:
                        pending.append(index)
                        continue
                    wid = idle.popleft()
                    wid = self._dispatch(wid, fn, tasks[index], index, timeout)
                    inflight[wid] = index
                    registry.inc("pool.dispatches")
                if completed >= n:
                    break
                if not inflight:
                    if pending:
                        soonest = min(
                            ready_at.get(index, 0.0) for index in pending
                        )
                        time.sleep(max(0.0, soonest - time.monotonic()))
                        continue
                    break  # pragma: no cover - defensive
                wait_timeout = 0.1
                deadlines = [
                    self._workers[wid].deadline
                    for wid in inflight
                    if self._workers[wid].deadline is not None
                ]
                if deadlines:
                    wait_timeout = max(
                        0.0, min(wait_timeout, min(deadlines) - now)
                    )
                conn_map = {
                    self._workers[wid].conn: wid for wid in inflight
                }
                for conn in _wait(list(conn_map), timeout=wait_timeout):
                    wid = conn_map[conn]
                    index = inflight.pop(wid)
                    try:
                        tag, _task_id, payload = conn.recv()
                    except (EOFError, OSError):
                        self._retire(wid)
                        idle.append(self._spawn())
                        record_failure(
                            index, "crash", "worker exited without a result"
                        )
                        continue
                    idle.append(wid)
                    if tag == "ok":
                        results[index] = payload
                        completed += 1
                        if not propagate:
                            registry.inc("resilient.tasks", mode="pool")
                        if on_result is not None:
                            on_result(index, payload)
                    else:
                        record_failure(index, "error", payload)
                now = time.monotonic()
                for wid in list(inflight):
                    worker = self._workers[wid]
                    if worker.deadline is not None and now >= worker.deadline:
                        index = inflight.pop(wid)
                        self._retire(wid, terminate=True)
                        idle.append(self._spawn())
                        record_failure(
                            index,
                            "timeout",
                            f"exceeded task timeout of {timeout:g}s",
                        )
                    elif not worker.proc.is_alive() and not worker.conn.poll():
                        index = inflight.pop(wid)
                        self._retire(wid)
                        idle.append(self._spawn())
                        record_failure(
                            index, "crash", "worker exited without a result"
                        )
        except PoolDispatchError:
            # Workers still chewing on in-flight tasks are replaced; the
            # caller reruns the batch serially, so their results are moot.
            for wid in list(inflight):
                self._retire(wid, terminate=True)
            self._ensure_workers()
            raise
        except BaseException:
            # Interrupt or an unexpected scheduler error: tear the pool
            # down hard so no worker or in-flight task outlives the batch.
            self.close(terminate=True)
            raise
        if propagate and errors:
            raise errors[min(errors)]
        return results


# ---------------------------------------------------------------------------
# Pool registry
# ---------------------------------------------------------------------------

_POOLS: dict[tuple[str, int], WorkerPool] = {}


def get_pool(jobs: int) -> WorkerPool:
    """The persistent pool for the current start method and ``jobs``."""
    from repro.analysis.parallel import _pool_start_method

    method = _pool_start_method()
    key = (method, jobs)
    pool = _POOLS.get(key)
    if pool is None or pool.closed:
        pool = WorkerPool(jobs, method)
        _POOLS[key] = pool
        get_registry().gauge("pool.active", len(_POOLS))
    return pool


def shutdown_pools() -> int:
    """Close every registered pool; returns how many were open."""
    count = 0
    for pool in list(_POOLS.values()):
        if not pool.closed:
            pool.close()
            count += 1
    _POOLS.clear()
    return count


atexit.register(shutdown_pools)
