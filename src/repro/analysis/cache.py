"""Persistent result cache for placement optimization runs.

Rerunning an experiment recomputes every placement from scratch even though
the optimizers are deterministic functions of (trace, config, method,
kwargs).  This module provides a content-addressed on-disk store so warm
reruns of ``run_eN()``, sweeps and DSE grids skip the optimizer entirely.

**Key scheme** (:func:`placement_key`): sha256 over a canonical JSON
document of

* a schema version and the package version (code-version salt — any release
  invalidates the cache wholesale, keeping stale results from surviving
  algorithm changes),
* the trace *fingerprint* (:meth:`AccessTrace.fingerprint` — content hash
  of the access sequence; renaming a trace does not miss),
* the full config geometry (words per DBC, DBC count, word width, port
  offsets, port policy),
* the method name and its keyword arguments (``seed`` etc.), canonicalised
  with sorted keys.

Entries are JSON files sharded as ``<root>/<key[:2]>/<key>.json`` and
written atomically (temp file + ``os.replace``), so concurrent workers can
share one cache directory.  Unreadable entries count as misses; entries
that exist but fail to parse are quarantined (renamed ``*.corrupt``) so a
torn write cannot be re-read — and re-fail — on every subsequent lookup
(``repro cache info`` reports the quarantine count).

The cache plugs into :func:`repro.core.api.optimize_placement` through the
``set_placement_cache`` hook — the core layer stays free of analysis-layer
imports.  Activation is explicit (:func:`cache_scope`, used by the CLI) or
environment-driven (``REPRO_CACHE=1``, honoured by pool workers via
:func:`ensure_configured_from_env`); ``REPRO_CACHE_DIR`` overrides the
default location ``~/.cache/repro-dwm``.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path

from repro import __version__
from repro.chaos import failpoint
from repro.core.api import get_placement_cache, set_placement_cache
from repro.util import atomic_write
from repro.core.placement import Placement
from repro.core.problem import PlacementResult
from repro.dwm.config import DWMConfig
from repro.obs import get_registry, trace_span
from repro.trace.model import AccessTrace

#: Bump when the stored payload layout changes.
SCHEMA_VERSION = 1

#: ``"1"``/``"true"``/… turns the cache on for CLI runs and pool workers.
CACHE_ENV = "REPRO_CACHE"

#: Overrides the on-disk location of the cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_TRUTHY = frozenset(("1", "true", "yes", "on"))
_FALSY = frozenset(("0", "false", "no", "off"))


def default_cache_root() -> Path:
    """Cache directory: ``REPRO_CACHE_DIR`` or ``~/.cache/repro-dwm``."""
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-dwm"


def cache_enabled_from_env() -> bool | None:
    """Tri-state read of ``REPRO_CACHE``: True, False, or None when unset."""
    raw = os.environ.get(CACHE_ENV, "").strip().lower()
    if raw in _TRUTHY:
        return True
    if raw in _FALSY:
        return False
    return None


def _canonical(value):
    """Reduce a kwargs value to a deterministic JSON-encodable form."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(entry) for entry in value]
    if isinstance(value, dict):
        return {str(key): _canonical(entry) for key, entry in sorted(value.items())}
    return repr(value)


def placement_key(
    trace: AccessTrace,
    config: DWMConfig,
    method: str,
    kwargs: dict,
) -> str:
    """Content hash identifying one optimization run (hex sha256)."""
    document = {
        "schema": SCHEMA_VERSION,
        "version": __version__,
        "trace": trace.fingerprint(),
        "config": {
            "words_per_dbc": config.words_per_dbc,
            "num_dbcs": config.num_dbcs,
            "bits_per_word": config.bits_per_word,
            "port_offsets": list(config.port_offsets),
            "port_policy": config.port_policy.value,
        },
        "method": method,
        "kwargs": {key: _canonical(kwargs[key]) for key in sorted(kwargs)},
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed JSON store with the placement-cache protocol.

    The generic :meth:`get`/:meth:`put` layer stores arbitrary JSON
    payloads by hex key; :meth:`lookup_placement`/:meth:`store_placement`
    implement the protocol :func:`repro.core.api.optimize_placement`
    expects from its injected cache.  ``hits``/``misses`` count placement
    lookups, making warm-vs-cold behaviour observable in benchmarks.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    # Generic keyed JSON storage
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Sideline an unparseable entry as ``<name>.corrupt``.

        A corrupt file (torn write from a crashed worker, disk error) would
        otherwise be re-read — and re-fail — on every lookup.  Renaming it
        keeps the evidence for inspection while clearing the key; failures
        to rename (another process won the race, read-only FS) are ignored.
        """
        try:
            os.replace(path, path.with_suffix(".corrupt"))
            self.quarantined += 1
            get_registry().inc("cache.placement.quarantined")
            from repro.robust import record_degradation

            record_degradation(
                "cache",
                "entry",
                "quarantine+recompute",
                f"corrupt shard {path.name}",
                warn=False,
            )
        except OSError:
            return

    def get(self, key: str):
        """Stored payload for ``key``, or ``None``.

        A file that exists but does not parse is quarantined (renamed to
        ``*.corrupt``) rather than silently re-read forever; it counts as a
        miss.
        """
        path = self._path(key)
        try:
            failpoint("cache.read")
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except ValueError:
            self._quarantine(path)
            return None
        except OSError:
            return None

    def put(self, key: str, payload) -> None:
        """Atomically persist ``payload`` under ``key``.

        Failures to write (read-only filesystem, disk full) are swallowed:
        a cache that cannot persist degrades to a cache that never hits.
        """
        path = self._path(key)
        try:
            failpoint("cache.write")
            with atomic_write(path, fsync=False) as handle:
                json.dump(payload, handle, sort_keys=True)
        except OSError:
            return

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        try:
            os.remove(self._path(key))
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Remove every entry (and quarantined files); returns entries removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                os.remove(path)
                removed += 1
            except OSError:
                continue
        for path in self.root.glob("??/*.corrupt"):
            try:
                os.remove(path)
            except OSError:
                continue
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def corrupt_count(self) -> int:
        """Number of quarantined (``*.corrupt``) files currently on disk."""
        return sum(1 for _ in self.root.glob("??/*.corrupt"))

    def size_bytes(self) -> int:
        """Total on-disk size of all entries."""
        total = 0
        for path in self.root.glob("??/*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    # ------------------------------------------------------------------
    # Placement-cache protocol (consumed by repro.core.api)
    # ------------------------------------------------------------------
    def lookup_placement(
        self,
        trace: AccessTrace,
        config: DWMConfig,
        method: str,
        kwargs: dict,
    ) -> PlacementResult | None:
        """Rebuild a cached :class:`PlacementResult`, or ``None`` on miss.

        A hit reports ``runtime_seconds=0.0`` (the optimizer did not run;
        the original compute time is kept in ``details``) and marks
        ``details["cache"] = "hit"``.
        """
        with trace_span("cache.lookup", method=method):
            key = placement_key(trace, config, method, kwargs)
            payload = self.get(key)
        if payload is not None:
            try:
                placement = Placement(
                    {
                        item: (int(slot[0]), int(slot[1]))
                        for item, slot in payload["placement"].items()
                    }
                )
                total_shifts = int(payload["total_shifts"])
                computed_runtime = float(payload.get("runtime_seconds", 0.0))
            except (KeyError, TypeError, ValueError, IndexError):
                payload = None
            else:
                self.hits += 1
                get_registry().inc("cache.placement.hits")
                return PlacementResult(
                    method=method,
                    placement=placement,
                    total_shifts=total_shifts,
                    runtime_seconds=0.0,
                    details={
                        "num_accesses": len(trace),
                        "num_items": trace.num_items,
                        "config": config.describe(),
                        "trace": trace.name,
                        "cache": "hit",
                        "computed_runtime_seconds": computed_runtime,
                    },
                )
        self.misses += 1
        get_registry().inc("cache.placement.misses")
        return None

    def store_placement(
        self,
        trace: AccessTrace,
        config: DWMConfig,
        method: str,
        kwargs: dict,
        result: PlacementResult,
    ) -> None:
        """Persist one freshly computed optimization result."""
        get_registry().inc("cache.placement.stores")
        key = placement_key(trace, config, method, kwargs)
        self.put(
            key,
            {
                "schema": SCHEMA_VERSION,
                "method": method,
                "total_shifts": result.total_shifts,
                "runtime_seconds": result.runtime_seconds,
                "placement": {
                    item: list(slot)
                    for item, slot in result.placement.as_dict().items()
                },
            },
        )


def ensure_configured_from_env():
    """Install a cache if ``REPRO_CACHE`` asks for one and none is active.

    Called by pool workers on startup: with the ``spawn`` start method the
    parent's process-global hook is gone, but the environment survives.
    Returns the active cache (possibly ``None``).
    """
    active = get_placement_cache()
    if active is None and cache_enabled_from_env():
        active = ResultCache()
        set_placement_cache(active)
    return active


@contextmanager
def cache_scope(enabled: bool = True, root: str | os.PathLike | None = None):
    """Activate (or force off) the placement cache for a ``with`` block.

    Sets the hook *and* the environment variables so pool workers spawned
    inside the block agree with the parent; both are restored on exit.
    Yields the :class:`ResultCache` (or ``None`` when disabling).
    """
    saved_env = {
        name: os.environ.get(name) for name in (CACHE_ENV, CACHE_DIR_ENV)
    }
    cache = None
    if enabled:
        cache = ResultCache(root)
        os.environ[CACHE_ENV] = "1"
        os.environ[CACHE_DIR_ENV] = str(cache.root)
    else:
        os.environ[CACHE_ENV] = "0"
    previous = set_placement_cache(cache)
    try:
        yield cache
    finally:
        set_placement_cache(previous)
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@contextmanager
def placement_cache_disabled():
    """Temporarily disable the placement cache (hook and env).

    Used by runtime-measuring code (E9) so a warm cache cannot turn an
    optimizer-runtime experiment into a disk-read benchmark.
    """
    saved_env = os.environ.get(CACHE_ENV)
    os.environ[CACHE_ENV] = "0"
    previous = set_placement_cache(None)
    try:
        yield
    finally:
        set_placement_cache(previous)
        if saved_env is None:
            os.environ.pop(CACHE_ENV, None)
        else:
            os.environ[CACHE_ENV] = saved_env
