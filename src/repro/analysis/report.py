"""Plain-text rendering of experiment tables and bar "figures".

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in a
terminal and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(
        str(header).ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    title: str | None = None,
    width: int = 40,
    value_format: str = "{:.3f}",
) -> str:
    """Render a horizontal ASCII bar chart (the "figure" analogue)."""
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(label) for label in values)
    maximum = max(values.values()) or 1.0
    for label, value in values.items():
        bar = "#" * max(0, round(width * value / maximum))
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)


def format_heatmap(
    rows: Mapping[str, Sequence[float]],
    title: str | None = None,
    levels: str = " .:-=+*#%@",
) -> str:
    """Render a row-labelled intensity heatmap (e.g. per-DBC shift load).

    Each row is a sequence of non-negative intensities, normalised to the
    global maximum; higher values map to denser glyphs.
    """
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    values = [value for row in rows.values() for value in row]
    maximum = max(values) if values else 0.0
    label_width = max((len(label) for label in rows), default=1)
    for label, row in rows.items():
        if maximum <= 0:
            cells = levels[0] * len(row)
        else:
            cells = "".join(
                levels[min(len(levels) - 1,
                           int(value / maximum * (len(levels) - 1) + 0.5))]
                for value in row
            )
        lines.append(f"{label.ljust(label_width)} |{cells}|")
    if maximum > 0:
        lines.append(f"scale: max={maximum:g}")
    return "\n".join(lines)


def format_grouped_bars(
    rows: Mapping[str, Mapping[str, float]],
    title: str | None = None,
    width: int = 30,
    value_format: str = "{:.3f}",
) -> str:
    """Render grouped bars: outer key = group (benchmark), inner = series."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    all_values = [
        value for series in rows.values() for value in series.values()
    ]
    maximum = max(all_values) if all_values else 1.0
    maximum = maximum or 1.0
    series_labels = sorted({label for series in rows.values() for label in series})
    label_width = max((len(label) for label in series_labels), default=1)
    for group, series in rows.items():
        lines.append(f"{group}:")
        for label in series_labels:
            if label not in series:
                continue
            value = series[label]
            bar = "#" * max(0, round(width * value / maximum))
            lines.append(
                f"  {label.ljust(label_width)} | {bar} "
                f"{value_format.format(value)}"
            )
    return "\n".join(lines)
