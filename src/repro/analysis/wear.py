"""Shift-wear analysis for DWM arrays.

Every shift command drives current through a DBC's nanowires, and every
write nucleates domains at the port cells — both wear mechanisms concentrate
where the placement concentrates activity.  This module quantifies that
exposure (the follow-up concern of the placement literature, where
wear-leveling works build directly on shift-minimizing placement):

* **wire wear** — total shift operations per DBC: a maximally unbalanced
  placement burns out one cluster while others idle;
* **port wear** — writes per (DBC, port) cell.

Metrics follow the wear-leveling literature: max/mean *wear ratio* (1.0 is
perfectly level) and the Gini coefficient of the exposure distribution.

:func:`wear_aware_placement` demonstrates the trade-off: it re-balances the
shift-minimizing heuristic's groups across DBCs when imbalance exceeds a
budget, trading a bounded shift increase for a lower wear ratio
(experiment E12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import evaluate_placement, per_dbc_costs
from repro.core.heuristic import heuristic_placement
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.errors import OptimizationError


@dataclass(frozen=True)
class WearReport:
    """Wear exposure of one placed run."""

    per_dbc_shifts: tuple[int, ...]
    per_dbc_writes: tuple[int, ...]
    total_shifts: int

    @property
    def max_mean_shift_ratio(self) -> float:
        """Max/mean wear ratio over DBCs that exist (1.0 = perfectly level)."""
        active = list(self.per_dbc_shifts)
        if not active or sum(active) == 0:
            return 1.0
        mean = sum(active) / len(active)
        return max(active) / mean

    @property
    def shift_gini(self) -> float:
        """Gini coefficient of per-DBC shift exposure (0 = level)."""
        values = sorted(self.per_dbc_shifts)
        n = len(values)
        total = sum(values)
        if n == 0 or total == 0:
            return 0.0
        cumulative = 0.0
        for rank, value in enumerate(values, start=1):
            cumulative += rank * value
        return (2.0 * cumulative) / (n * total) - (n + 1) / n

    @property
    def hottest_dbc(self) -> int:
        """Index of the most shift-stressed DBC."""
        return max(
            range(len(self.per_dbc_shifts)),
            key=lambda i: self.per_dbc_shifts[i],
        )


def wear_report(
    problem: PlacementProblem,
    placement: Placement,
) -> WearReport:
    """Compute the wear exposure of running the trace under a placement."""
    config = problem.config
    shift_costs = per_dbc_costs(problem, placement)
    per_dbc_shifts = [shift_costs.get(dbc, 0) for dbc in range(config.num_dbcs)]
    per_dbc_writes = [0] * config.num_dbcs
    for access in problem.trace:
        if access.is_write:
            per_dbc_writes[placement[access.item].dbc] += 1
    return WearReport(
        per_dbc_shifts=tuple(per_dbc_shifts),
        per_dbc_writes=tuple(per_dbc_writes),
        total_shifts=sum(per_dbc_shifts),
    )


def wear_aware_placement(
    problem: PlacementProblem,
    max_shift_overhead: float = 0.10,
    max_rounds: int = 16,
) -> Placement:
    """Shift-minimizing placement re-balanced for wear.

    Starts from the heuristic placement, then repeatedly interleaves the
    hottest DBC's contents with the coldest's, offset by offset (a pure
    relabeling of DBC indices never changes shift cost — DBCs are symmetric
    — so the lever is *splitting* the hottest restricted subsequence across
    two wires).  A candidate round is accepted only while total shifts stay
    within ``(1 + max_shift_overhead)`` of the starting cost and the
    max/mean wear ratio improves; the first rejected round stops the search.
    """
    if max_shift_overhead < 0:
        raise OptimizationError("max_shift_overhead must be >= 0")
    placement = heuristic_placement(problem)
    base_cost = evaluate_placement(problem, placement)
    budget = base_cost * (1.0 + max_shift_overhead)
    best = placement
    best_report = wear_report(problem, best)
    config = problem.config
    for _ in range(max_rounds):
        report = wear_report(problem, best)
        if report.max_mean_shift_ratio <= 1.05:
            break
        hot = report.hottest_dbc
        cold = min(
            range(config.num_dbcs),
            key=lambda i: report.per_dbc_shifts[i],
        )
        if hot == cold:
            break
        hot_contents = best.dbc_contents(hot)
        cold_contents = best.dbc_contents(cold)
        if not hot_contents:
            break
        # Exchange a 1/stride share of the hot DBC's occupied offsets with
        # the cold DBC (free offset when available, else a swap with the
        # cold item at that offset), splitting the hot restricted
        # subsequence across two wires.  Coarse exchanges are tried first;
        # if the shift budget rejects them, finer strides follow.
        accepted = False
        for stride in (2, 4, 8):
            cold_occupied = set(cold_contents)
            mapping = dict(best.as_dict())
            for offset in sorted(hot_contents)[::stride]:
                item = hot_contents[offset]
                if offset not in cold_occupied:
                    mapping[item] = (cold, offset)
                    cold_occupied.add(offset)
                else:
                    partner = cold_contents[offset]
                    mapping[item] = (cold, offset)
                    mapping[partner] = (hot, offset)
            candidate = Placement(
                {item: Slot(*slot) for item, slot in mapping.items()}
            )
            cost = evaluate_placement(problem, candidate, validate=False)
            candidate_report = wear_report(problem, candidate)
            if (
                cost <= budget
                and candidate_report.max_mean_shift_ratio
                < best_report.max_mean_shift_ratio
            ):
                best = candidate
                best_report = candidate_report
                accepted = True
                break
        if not accepted:
            break
    return best


def lifetime_estimate_accesses(
    report: WearReport,
    shift_endurance: float = 1e16,
    trace_length: int = 1,
) -> float:
    """Replays of the trace until the hottest DBC exceeds its endurance.

    A coarse first-failure model: the wire with the highest shift exposure
    per replay dies first; leveling the exposure extends system lifetime
    proportionally to the max/mean ratio.
    """
    hottest = max(report.per_dbc_shifts, default=0)
    if hottest == 0:
        return float("inf")
    replays = shift_endurance / hottest
    return replays * trace_length
