"""Experiment harness: regenerates every evaluation artifact (E1–E10).

Each ``run_eN()`` function computes one experiment from DESIGN.md §5 and
returns an :class:`ExperimentOutput` holding both the structured data (for
tests and EXPERIMENTS.md) and a rendered table/figure string matching what
the paper reports.  ``python -m repro.analysis.experiments e3`` prints one
experiment; ``all`` prints every one.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field

from repro.analysis.metrics import geometric_mean, reduction_percent
from repro.analysis.report import format_bar_chart, format_grouped_bars, format_table
from repro.analysis.sweep import normalized_by_method, sweep
from repro.core.api import build_problem, optimize_placement
from repro.core.cost import evaluate_placement
from repro.core.baselines import random_placement
from repro.dwm.config import DWMConfig
from repro.dwm.energy import DWMEnergyModel, SRAMEnergyModel
from repro.memory.spm import ScratchpadMemory
from repro.memory.sram import SRAMScratchpad
from repro.trace.kernels import SWEEP_KERNELS, benchmark_suite
from repro.trace.model import AccessTrace
from repro.trace.stats import compute_stats, shift_locality_score
from repro.trace.synthetic import markov_trace, pingpong_trace, zipf_trace


@dataclass
class ExperimentOutput:
    """Structured data plus rendered text for one experiment."""

    experiment_id: str
    title: str
    data: dict = field(default_factory=dict)
    rendered: str = ""

    def __str__(self) -> str:
        return self.rendered


def _mean_random_shifts(trace: AccessTrace, config: DWMConfig, seeds=(0, 1, 2)) -> float:
    """Average shift cost of random placements over several seeds."""
    problem = build_problem(trace, config)
    return statistics.mean(
        evaluate_placement(problem, random_placement(problem, seed))
        for seed in seeds
    )


def _default_config(trace: AccessTrace, words_per_dbc: int = 64, num_ports: int = 1) -> DWMConfig:
    return DWMConfig.for_items(
        trace.num_items, words_per_dbc=words_per_dbc, num_ports=num_ports
    )


# ---------------------------------------------------------------------------
# E1 — benchmark characteristics table
# ---------------------------------------------------------------------------

def run_e1() -> ExperimentOutput:
    """Table 1: benchmark characteristics."""
    suite = benchmark_suite()
    rows = []
    data = {}
    for name, trace in suite.items():
        stats = compute_stats(trace)
        locality = shift_locality_score(trace)
        rows.append(
            (
                name,
                stats.num_items,
                stats.num_accesses,
                stats.reads,
                stats.writes,
                stats.mean_reuse_distance,
                locality,
            )
        )
        data[name] = {
            "items": stats.num_items,
            "accesses": stats.num_accesses,
            "reads": stats.reads,
            "writes": stats.writes,
            "mean_reuse_distance": stats.mean_reuse_distance,
            "locality_score": locality,
        }
    rendered = format_table(
        ("benchmark", "items", "accesses", "reads", "writes",
         "mean reuse dist", "locality"),
        rows,
        title="E1 (Table 1) — Benchmark characteristics",
    )
    return ExperimentOutput("e1", "Benchmark characteristics", data, rendered)


# ---------------------------------------------------------------------------
# E2 — motivation: shift share under naive placement
# ---------------------------------------------------------------------------

def run_e2() -> ExperimentOutput:
    """Motivation figure: shift share of latency/energy, naive placement."""
    suite = benchmark_suite()
    energy_model = DWMEnergyModel()
    data = {}
    rows = []
    for name, trace in suite.items():
        config = _default_config(trace)
        result = optimize_placement(trace, config, method="declaration")
        spm = ScratchpadMemory(config, result.placement)
        sim = spm.simulate(trace)
        breakdown = sim.energy(energy_model)
        data[name] = {
            "shifts_per_access": sim.shifts_per_access,
            "shift_latency_share": breakdown.shift_latency_share,
            "shift_energy_share": breakdown.shift_energy_share,
        }
        rows.append(
            (
                name,
                sim.shifts_per_access,
                100 * breakdown.shift_latency_share,
                100 * breakdown.shift_energy_share,
            )
        )
    rendered = format_table(
        ("benchmark", "shifts/access", "shift latency %", "shift energy %"),
        rows,
        title="E2 (motivation) — Shift cost share under declaration placement",
    )
    return ExperimentOutput("e2", "Shift share under naive placement", data, rendered)


# ---------------------------------------------------------------------------
# E3 — main result: normalized shift count
# ---------------------------------------------------------------------------

E3_METHODS = ("random", "frequency", "spectral", "heuristic")


def run_e3() -> ExperimentOutput:
    """Main-result figure: shift counts normalized to declaration order."""
    suite = benchmark_suite()
    data: dict[str, dict[str, float]] = {}
    for name, trace in suite.items():
        config = _default_config(trace)
        baseline = optimize_placement(trace, config, method="declaration")
        normalized = {"declaration": 1.0}
        normalized["random"] = (
            _mean_random_shifts(trace, config) / baseline.total_shifts
            if baseline.total_shifts
            else 0.0
        )
        for method in ("frequency", "spectral", "heuristic"):
            result = optimize_placement(trace, config, method=method)
            normalized[method] = (
                result.total_shifts / baseline.total_shifts
                if baseline.total_shifts
                else 0.0
            )
        data[name] = normalized
    methods = ("declaration", "random", "frequency", "spectral", "heuristic")
    data["geomean"] = {
        method: geometric_mean(
            row[method] for key, row in data.items() if key != "geomean"
        )
        for method in methods
    }
    rendered = format_grouped_bars(
        data,
        title=(
            "E3 (main result) — Shift operations normalized to declaration "
            "placement (lower is better)"
        ),
    )
    return ExperimentOutput("e3", "Normalized shift count", data, rendered)


# ---------------------------------------------------------------------------
# E4 / E5 — sensitivity to DBC length and port count
# ---------------------------------------------------------------------------

def run_e4(lengths=(16, 32, 64, 128)) -> ExperimentOutput:
    """Sensitivity of the shift reduction to DBC length L."""
    traces = list(benchmark_suite(SWEEP_KERNELS).values())
    records = sweep(
        traces,
        methods=("declaration", "heuristic"),
        words_per_dbc_values=lengths,
    )
    normalized = normalized_by_method(records)
    data: dict[int, float] = {}
    for length in lengths:
        cells = [
            row["heuristic"]
            for (trace, l_value, _p), row in normalized.items()
            if l_value == length
        ]
        data[length] = geometric_mean(cells)
    rendered = format_bar_chart(
        {f"L={length}": value for length, value in data.items()},
        title=(
            "E4 — Heuristic shifts normalized to declaration vs DBC length "
            "(geomean over kernels)"
        ),
    )
    return ExperimentOutput("e4", "Sensitivity to DBC length", {"normalized": data}, rendered)


def run_e5(port_counts=(1, 2, 4)) -> ExperimentOutput:
    """Sensitivity of the shift reduction to the number of access ports."""
    traces = list(benchmark_suite(SWEEP_KERNELS).values())
    records = sweep(
        traces,
        methods=("declaration", "heuristic"),
        num_ports_values=port_counts,
    )
    normalized = normalized_by_method(records)
    data: dict[int, dict[str, float]] = {}
    for ports in port_counts:
        cells = [
            row["heuristic"]
            for (trace, _l, p_value), row in normalized.items()
            if p_value == ports
        ]
        absolute = [
            record.total_shifts
            for record in records
            if record.num_ports == ports and record.method == "declaration"
        ]
        data[ports] = {
            "normalized_heuristic": geometric_mean(cells),
            "baseline_total_shifts": float(sum(absolute)),
        }
    rendered = format_table(
        ("ports", "heuristic/declaration", "declaration total shifts"),
        [
            (p, row["normalized_heuristic"], int(row["baseline_total_shifts"]))
            for p, row in data.items()
        ],
        title="E5 — Sensitivity to access-port count (geomean over kernels)",
    )
    return ExperimentOutput("e5", "Sensitivity to port count", {"by_ports": data}, rendered)


# ---------------------------------------------------------------------------
# E6 / E7 — energy and performance
# ---------------------------------------------------------------------------

def run_e6() -> ExperimentOutput:
    """Energy figure: total DWM energy normalized to declaration + SRAM ref."""
    suite = benchmark_suite()
    dwm_model = DWMEnergyModel()
    sram_model = SRAMEnergyModel()
    data: dict[str, dict[str, float]] = {}
    for name, trace in suite.items():
        config = _default_config(trace)
        decl = optimize_placement(trace, config, method="declaration")
        heur = optimize_placement(trace, config, method="heuristic")
        spm_decl = ScratchpadMemory(config, decl.placement).simulate(trace)
        spm_heur = ScratchpadMemory(config, heur.placement).simulate(trace)
        sram = SRAMScratchpad(config.capacity_words, sram_model).simulate(trace)
        e_decl = spm_decl.energy(dwm_model).total_energy_pj
        e_heur = spm_heur.energy(dwm_model).total_energy_pj
        e_sram = sram.sram_reference(sram_model).total_energy_pj
        data[name] = {
            "declaration": 1.0,
            "heuristic": e_heur / e_decl if e_decl else 0.0,
            "sram": e_sram / e_decl if e_decl else 0.0,
        }
    data["geomean"] = {
        method: geometric_mean(
            row[method] for key, row in data.items() if key != "geomean"
        )
        for method in ("declaration", "heuristic", "sram")
    }
    rendered = format_grouped_bars(
        data,
        title="E6 — Total energy normalized to DWM+declaration (lower is better)",
    )
    return ExperimentOutput("e6", "Energy reduction", data, rendered)


def run_e7() -> ExperimentOutput:
    """Performance figure: access latency normalized to declaration."""
    suite = benchmark_suite()
    model = DWMEnergyModel()
    data: dict[str, dict[str, float]] = {}
    for name, trace in suite.items():
        config = _default_config(trace)
        decl = optimize_placement(trace, config, method="declaration")
        heur = optimize_placement(trace, config, method="heuristic")
        lat_decl = (
            ScratchpadMemory(config, decl.placement)
            .simulate(trace)
            .energy(model)
            .latency_ns
        )
        lat_heur = (
            ScratchpadMemory(config, heur.placement)
            .simulate(trace)
            .energy(model)
            .latency_ns
        )
        data[name] = {
            "normalized_latency": lat_heur / lat_decl if lat_decl else 0.0,
            "speedup": lat_decl / lat_heur if lat_heur else float("inf"),
        }
    data["geomean"] = {
        "normalized_latency": geometric_mean(
            row["normalized_latency"] for key, row in data.items() if key != "geomean"
        ),
        "speedup": geometric_mean(
            row["speedup"] for key, row in data.items() if key != "geomean"
        ),
    }
    rendered = format_table(
        ("benchmark", "latency (heur/decl)", "speedup"),
        [
            (name, row["normalized_latency"], row["speedup"])
            for name, row in data.items()
        ],
        title="E7 — Access latency normalized to declaration placement",
    )
    return ExperimentOutput("e7", "Performance improvement", data, rendered)


# ---------------------------------------------------------------------------
# E8 — heuristic vs exact optimum on small instances
# ---------------------------------------------------------------------------

def _small_instances() -> list[AccessTrace]:
    """Small single-DBC instances where the exact optimum is computable."""
    instances = [
        markov_trace(8, 160, locality=0.85, seed=7).renamed("markov8"),
        markov_trace(10, 200, locality=0.75, seed=11).renamed("markov10"),
        zipf_trace(9, 180, alpha=1.1, seed=3).renamed("zipf9"),
        pingpong_trace(4, 24).renamed("pingpong4"),
    ]
    from repro.trace.kernels import fir_trace, histogram_trace

    instances.append(
        fir_trace(taps=4, samples=16).top_items(9).renamed("fir-small")
    )
    instances.append(
        histogram_trace(bins=8, samples=64).top_items(9).renamed("hist-small")
    )
    return instances


def _multi_dbc_instances() -> list[tuple[AccessTrace, DWMConfig]]:
    """Multi-DBC small instances for the set-partition exact optimum."""
    port_zero = (0,)
    return [
        (
            markov_trace(10, 200, locality=0.8, seed=21).renamed("markov10x3"),
            DWMConfig(words_per_dbc=4, num_dbcs=3, port_offsets=port_zero),
        ),
        (
            pingpong_trace(4, 20).renamed("pingpong4x4"),
            DWMConfig(words_per_dbc=4, num_dbcs=4, port_offsets=port_zero),
        ),
        (
            zipf_trace(11, 220, alpha=1.2, seed=22).renamed("zipf11x3"),
            DWMConfig(words_per_dbc=4, num_dbcs=3, port_offsets=port_zero),
        ),
    ]


def run_e8() -> ExperimentOutput:
    """Table: heuristic vs exact optimum (single- and multi-DBC instances)."""
    data: dict[str, dict[str, float]] = {}
    rows = []
    for trace in _small_instances():
        config = DWMConfig(words_per_dbc=16, num_dbcs=1)
        exact = optimize_placement(trace, config, method="exact")
        heuristic = optimize_placement(trace, config, method="heuristic")
        refined = optimize_placement(trace, config, method="heuristic+ls")
        gap = (
            100.0 * (heuristic.total_shifts - exact.total_shifts) / exact.total_shifts
            if exact.total_shifts
            else 0.0
        )
        gap_refined = (
            100.0 * (refined.total_shifts - exact.total_shifts) / exact.total_shifts
            if exact.total_shifts
            else 0.0
        )
        data[trace.name] = {
            "exact": exact.total_shifts,
            "heuristic": heuristic.total_shifts,
            "heuristic+ls": refined.total_shifts,
            "gap_percent": gap,
            "gap_refined_percent": gap_refined,
        }
        rows.append(
            (
                trace.name,
                trace.num_items,
                exact.total_shifts,
                heuristic.total_shifts,
                gap,
                refined.total_shifts,
                gap_refined,
            )
        )
    for trace, config in _multi_dbc_instances():
        exact = optimize_placement(trace, config, method="exact")
        heuristic = optimize_placement(trace, config, method="heuristic")
        refined = optimize_placement(
            trace, config, method="heuristic+ls", max_evaluations=2000
        )
        gap = (
            100.0 * (heuristic.total_shifts - exact.total_shifts)
            / exact.total_shifts
            if exact.total_shifts
            else 0.0
        )
        gap_refined = (
            100.0 * (refined.total_shifts - exact.total_shifts)
            / exact.total_shifts
            if exact.total_shifts
            else 0.0
        )
        data[trace.name] = {
            "exact": exact.total_shifts,
            "heuristic": heuristic.total_shifts,
            "heuristic+ls": refined.total_shifts,
            "gap_percent": gap,
            "gap_refined_percent": gap_refined,
        }
        rows.append(
            (
                trace.name,
                trace.num_items,
                exact.total_shifts,
                heuristic.total_shifts,
                gap,
                refined.total_shifts,
                gap_refined,
            )
        )
    rendered = format_table(
        ("instance", "items", "OPT shifts", "heuristic", "gap %",
         "heur+ls", "gap+ls %"),
        rows,
        title=(
            "E8 — Heuristic vs exact optimum (single-DBC DP + multi-DBC "
            "partition DP)"
        ),
    )
    return ExperimentOutput("e8", "Optimality gap", data, rendered)


# ---------------------------------------------------------------------------
# E9 — placement-algorithm runtime scaling
# ---------------------------------------------------------------------------

def run_e9(sizes=(16, 32, 64, 128), methods=("frequency", "spectral", "heuristic")) -> ExperimentOutput:
    """Table: algorithm runtime vs problem size on synthetic traces."""
    from repro.analysis.cache import placement_cache_disabled

    data: dict[int, dict[str, float]] = {}
    rows = []
    # E9 measures optimizer runtime; a warm placement cache would turn it
    # into a disk-read benchmark, so caching is forced off here.
    with placement_cache_disabled():
        for size in sizes:
            trace = markov_trace(size, size * 30, locality=0.8, seed=size)
            config = DWMConfig.for_items(size, words_per_dbc=32)
            row: dict[str, float] = {}
            for method in methods:
                start = time.perf_counter()
                optimize_placement(trace, config, method=method)
                row[method] = time.perf_counter() - start
            data[size] = row
            rows.append((size,) + tuple(row[m] for m in methods))
    rendered = format_table(
        ("items",) + tuple(f"{m} (s)" for m in methods),
        rows,
        title="E9 — Placement runtime scaling (synthetic Markov traces)",
        float_format="{:.4f}",
    )
    return ExperimentOutput("e9", "Placement runtime", {"by_size": data}, rendered)


# ---------------------------------------------------------------------------
# E10 — ablation: grouping vs ordering vs combined
# ---------------------------------------------------------------------------

E10_METHODS = ("grouping_only", "ordering_only", "heuristic", "heuristic+ls")


def run_e10() -> ExperimentOutput:
    """Ablation: each phase's contribution, normalized to declaration."""
    suite = benchmark_suite(SWEEP_KERNELS)
    data: dict[str, dict[str, float]] = {}
    for name, trace in suite.items():
        config = _default_config(trace)
        baseline = optimize_placement(trace, config, method="declaration")
        row = {"declaration": 1.0}
        for method in E10_METHODS:
            kwargs = {"max_evaluations": 600} if method == "heuristic+ls" else {}
            result = optimize_placement(trace, config, method=method, **kwargs)
            row[method] = (
                result.total_shifts / baseline.total_shifts
                if baseline.total_shifts
                else 0.0
            )
        data[name] = row
    data["geomean"] = {
        method: geometric_mean(
            row[method] for key, row in data.items() if key != "geomean"
        )
        for method in ("declaration",) + E10_METHODS
    }
    rendered = format_grouped_bars(
        data,
        title="E10 — Ablation: phase contributions (shifts normalized to declaration)",
    )
    return ExperimentOutput("e10", "Phase ablation", data, rendered)


# ---------------------------------------------------------------------------
# E11 — controller timing: shift overlap across DBCs (extension)
# ---------------------------------------------------------------------------

def run_e11() -> ExperimentOutput:
    """Cycle counts: serialised vs overlapped controller, per kernel.

    Extension experiment: the headline latency model serialises all events;
    a controller with per-DBC shift drivers overlaps one DBC's shifting with
    another's port access.  Reported for an in-order core (blocking loads)
    and a decoupled core (non-blocking loads).
    """
    from repro.memory.timing import TimingParams, TimingSimulator

    suite = benchmark_suite(SWEEP_KERNELS)
    data: dict[str, dict[str, float]] = {}
    rows = []
    for name, trace in suite.items():
        config = _default_config(trace, words_per_dbc=16)
        result = optimize_placement(trace, config, method="heuristic")
        blocking = TimingSimulator(config, result.placement, TimingParams())
        decoupled = TimingSimulator(
            config, result.placement, TimingParams(blocking_loads=False)
        )
        serial = blocking.run(trace, overlap=False)
        over_blocking = blocking.run(trace, overlap=True)
        over_decoupled = decoupled.run(trace, overlap=True)
        data[name] = {
            "serial_cycles": serial.total_cycles,
            "overlap_blocking": over_blocking.total_cycles,
            "overlap_decoupled": over_decoupled.total_cycles,
            "speedup_blocking": over_blocking.speedup_over(serial),
            "speedup_decoupled": over_decoupled.speedup_over(serial),
        }
        rows.append(
            (
                name,
                serial.total_cycles,
                over_blocking.total_cycles,
                data[name]["speedup_blocking"],
                over_decoupled.total_cycles,
                data[name]["speedup_decoupled"],
            )
        )
    geo_blocking = geometric_mean(
        row["speedup_blocking"] for row in data.values()
    )
    geo_decoupled = geometric_mean(
        row["speedup_decoupled"] for row in data.values()
    )
    rows.append(("geomean", "", "", geo_blocking, "", geo_decoupled))
    data["geomean"] = {
        "speedup_blocking": geo_blocking,
        "speedup_decoupled": geo_decoupled,
    }
    rendered = format_table(
        ("benchmark", "serial cyc", "overlap cyc", "speedup",
         "decoupled cyc", "speedup (nb loads)"),
        rows,
        title="E11 (extension) — Shift/access overlap across DBCs",
    )
    return ExperimentOutput("e11", "Controller overlap", data, rendered)


# ---------------------------------------------------------------------------
# E12 — wear balance of shift-minimizing placement (extension)
# ---------------------------------------------------------------------------

def run_e12() -> ExperimentOutput:
    """Wear imbalance: heuristic vs wear-aware re-balancing.

    Extension experiment: shift-minimizing placement concentrates shifts on
    few DBCs; the wear-aware variant levels the exposure for a bounded shift
    overhead (the trade wear-leveling follow-up work formalises).
    """
    from repro.analysis.wear import wear_aware_placement, wear_report
    from repro.core.api import build_problem

    suite = benchmark_suite(SWEEP_KERNELS)
    data: dict[str, dict[str, float]] = {}
    rows = []
    for name, trace in suite.items():
        config = _default_config(trace, words_per_dbc=16)
        problem = build_problem(trace, config)
        heuristic = optimize_placement(trace, config, method="heuristic")
        heuristic_wear = wear_report(problem, heuristic.placement)
        balanced = wear_aware_placement(problem)
        balanced_wear = wear_report(problem, balanced)
        balanced_shifts = evaluate_placement(problem, balanced, validate=False)
        overhead = (
            100.0 * (balanced_shifts - heuristic.total_shifts)
            / heuristic.total_shifts
            if heuristic.total_shifts
            else 0.0
        )
        data[name] = {
            "heuristic_ratio": heuristic_wear.max_mean_shift_ratio,
            "balanced_ratio": balanced_wear.max_mean_shift_ratio,
            "shift_overhead_percent": overhead,
        }
        rows.append(
            (
                name,
                heuristic_wear.max_mean_shift_ratio,
                balanced_wear.max_mean_shift_ratio,
                overhead,
            )
        )
    data["geomean"] = {
        "heuristic_ratio": geometric_mean(
            row["heuristic_ratio"] for row in data.values()
        ),
        "balanced_ratio": geometric_mean(
            row["balanced_ratio"] for row in data.values()
        ),
    }
    rows.append(
        ("geomean", data["geomean"]["heuristic_ratio"],
         data["geomean"]["balanced_ratio"], "")
    )
    rendered = format_table(
        ("benchmark", "max/mean wear (heuristic)", "max/mean wear (balanced)",
         "shift overhead %"),
        rows,
        title="E12 (extension) — Wear balance vs shift minimality",
    )
    return ExperimentOutput("e12", "Wear balance", data, rendered)


# ---------------------------------------------------------------------------
# E13 — static vs online placement on phase-changing workloads (extension)
# ---------------------------------------------------------------------------

def run_e13(window: int = 500) -> ExperimentOutput:
    """Static-profile vs oracle-static vs online-adaptive placement.

    Extension experiment (the future-work direction of static-placement
    papers): three long program phases over disjoint working sets.  A
    placement profiled on the first phase decays badly; the online placer
    re-optimizes per window, paying measured migration costs, and approaches
    the whole-trace oracle.
    """
    from repro.core.online import compare_static_vs_online

    phase_a = markov_trace(40, 4000, locality=0.9, seed=1).prefixed("a_")
    phase_b = markov_trace(40, 4000, locality=0.9, seed=2).prefixed("b_")
    phase_c = zipf_trace(40, 4000, alpha=1.3, seed=3).prefixed("c_")
    trace = phase_a.concatenated(phase_b).concatenated(phase_c).renamed(
        "phased(3x4000)"
    )
    config = DWMConfig.for_items(trace.num_items, words_per_dbc=16)
    comparison = compare_static_vs_online(trace, config, window=window)
    rendered = format_table(
        ("policy", "total shifts"),
        [
            ("static (first-phase profile)", comparison["static_first_window"]),
            ("online adaptive (incl. migration)", comparison["online"]),
            ("  of which migration", comparison["online_migration"]),
            ("oracle static (whole trace)", comparison["oracle_static"]),
        ],
        title=(
            f"E13 (extension) — Phase-changing workload, window={window} "
            f"({comparison['online_replacements']} re-placements)"
        ),
    )
    return ExperimentOutput("e13", "Online vs static placement", comparison, rendered)


# ---------------------------------------------------------------------------
# E14 — SPM allocation under capacity pressure (extension)
# ---------------------------------------------------------------------------

def run_e14(fractions=(0.25, 0.5, 0.75, 1.0)) -> ExperimentOutput:
    """Capacity sweep: allocation + placement vs background memory.

    Extension experiment: when the working set exceeds the scratchpad, a
    knapsack allocator picks resident objects and the placement method of
    the resident set decides how much of the DWM advantage survives.  At low
    capacity the background-memory latency dominates; as capacity grows,
    shift costs dominate and shift-aware placement opens a gap.
    """
    from repro.core.allocation import allocate, partition_objects, simulate_allocation

    trace = benchmark_suite(("dct8x8",))["dct8x8"]
    total_words = sum(
        obj.size_words for obj in partition_objects(trace)
    )
    data: dict[float, dict[str, float]] = {}
    rows = []
    for fraction in fractions:
        capacity = max(16, int(total_words * fraction))
        config = DWMConfig(words_per_dbc=16, num_dbcs=max(1, capacity // 16))
        cell: dict[str, float] = {}
        for method in ("declaration", "heuristic"):
            allocation = allocate(
                trace, config, policy="oblivious", placement_method=method
            )
            sim = simulate_allocation(trace, config, allocation)
            cell[f"latency_{method}"] = sim.total_latency_ns
            cell["hit_fraction"] = sim.spm_hit_fraction
            cell[f"spm_shifts_{method}"] = sim.spm_shifts
        data[fraction] = cell
        rows.append(
            (
                f"{int(100 * fraction)}%",
                config.capacity_words,
                f"{cell['hit_fraction']:.2f}",
                cell["latency_declaration"],
                cell["latency_heuristic"],
                cell["latency_heuristic"] / cell["latency_declaration"],
            )
        )
    rendered = format_table(
        ("capacity", "words", "SPM hit frac", "latency decl (ns)",
         "latency heur (ns)", "ratio"),
        rows,
        title="E14 (extension) — SPM allocation under capacity pressure (dct8x8)",
    )
    return ExperimentOutput("e14", "Allocation capacity sweep", {"by_fraction": data}, rendered)


# ---------------------------------------------------------------------------
# E15 — runtime reorganisation vs static layout in a DWM cache (extension)
# ---------------------------------------------------------------------------

def run_e15() -> ExperimentOutput:
    """DWM cache: static slot layout vs self-organising promotion.

    Extension experiment with a *negative* result that motivates the paper's
    approach: in a set-associative DWM cache with LRU-victim filling and
    honest swap accounting, runtime reorganisation (transposition promotion,
    MRU-at-port) costs more device work than it saves — head persistence
    already absorbs repeat-access locality — so compile-time placement, not
    hardware reshuffling, is the right lever for shift reduction.
    """
    from repro.dwm.config import DWMConfig as _DWMConfig
    from repro.memory.cache import CacheGeometry, compare_cache_policies

    geometry = CacheGeometry(
        num_sets=4,
        ways=16,
        dbc_config=_DWMConfig(
            words_per_dbc=64, num_dbcs=4, port_offsets=(0,)
        ),
    )
    workloads = {
        "zipf(a=1.0)": zipf_trace(400, 8000, alpha=1.0, seed=5),
        "zipf(a=1.5)": zipf_trace(400, 8000, alpha=1.5, seed=5),
        "markov": markov_trace(200, 8000, locality=0.8, seed=6),
    }
    for name, trace in benchmark_suite(("fir", "matmul", "kmp")).items():
        workloads[name] = trace
    data: dict[str, dict[str, float]] = {}
    rows = []
    for name, trace in workloads.items():
        results = compare_cache_policies(trace, geometry)
        static = results["static"]
        data[name] = {
            "hit_rate": static.hit_rate,
            "static_shifts": static.shifts,
            "promote_ratio": (
                results["promote"].shifts / static.shifts
                if static.shifts
                else 1.0
            ),
            "mru_ratio": (
                results["mru_at_port"].shifts / static.shifts
                if static.shifts
                else 1.0
            ),
        }
        rows.append(
            (
                name,
                f"{static.hit_rate:.3f}",
                static.shifts,
                data[name]["promote_ratio"],
                data[name]["mru_ratio"],
            )
        )
    rendered = format_table(
        ("workload", "hit rate", "static shifts", "promote/static",
         "mru-at-port/static"),
        rows,
        title=(
            "E15 (extension) — DWM cache: runtime reorganisation vs static "
            "layout (>1 = reorganisation loses)"
        ),
    )
    return ExperimentOutput("e15", "Cache reorganisation", data, rendered)


# ---------------------------------------------------------------------------
# E16 — shift-aware access reordering on top of placement (extension)
# ---------------------------------------------------------------------------

def run_e16(windows=(4, 16)) -> ExperimentOutput:
    """Access reordering stacked on the placement heuristic.

    Extension experiment: a compiler that may reorder nearby independent
    accesses (preserving per-item program order) lets the head sweep instead
    of ping-pong.  Reports the extra shift reduction over the heuristic
    placement alone at several window sizes.
    """
    from repro.core.api import build_problem
    from repro.core.reordering import reorder_accesses

    suite = benchmark_suite(SWEEP_KERNELS)
    data: dict[str, dict[str, float]] = {}
    rows = []
    for name, trace in suite.items():
        config = _default_config(trace, words_per_dbc=16)
        problem = build_problem(trace, config)
        placement = optimize_placement(trace, config, method="heuristic").placement
        cell: dict[str, float] = {}
        row = [name]
        for window in windows:
            result = reorder_accesses(problem, placement, window=window)
            cell[f"w{window}_shifts"] = result.total_shifts
            cell[f"w{window}_reduction"] = result.reduction_percent
            cell["original_shifts"] = result.original_shifts
            row.append(result.total_shifts)
            row.append(result.reduction_percent)
        data[name] = cell
        rows.append((name, int(cell["original_shifts"]))
                    + tuple(
                        value
                        for window in windows
                        for value in (
                            int(cell[f"w{window}_shifts"]),
                            cell[f"w{window}_reduction"],
                        )
                    ))
    headers = ("benchmark", "placed shifts") + tuple(
        header
        for window in windows
        for header in (f"w={window} shifts", f"w={window} gain %")
    )
    rendered = format_table(
        headers,
        rows,
        title=(
            "E16 (extension) — Shift-aware access reordering on top of the "
            "placement heuristic"
        ),
    )
    return ExperimentOutput("e16", "Access reordering", data, rendered)


# ---------------------------------------------------------------------------
# E17 — speculative pre-shifting controller (extension)
# ---------------------------------------------------------------------------

def run_e17() -> ExperimentOutput:
    """Confidence-gated pre-shifting on top of the placement heuristic.

    Extension experiment: a per-DBC next-offset predictor lets the
    controller shift speculatively during idle time.  Reports the
    latency-critical (demand) shift reduction, the energy-shift overhead,
    and the predictor accuracy per kernel — with the confidence gate, the
    controller abstains on unpredictable kernels instead of losing.
    """
    from repro.core.api import build_problem
    from repro.dwm.preshift import simulate_preshift

    suite = benchmark_suite(SWEEP_KERNELS)
    data: dict[str, dict[str, float]] = {}
    rows = []
    for name, trace in suite.items():
        config = _default_config(trace, words_per_dbc=16)
        placement = optimize_placement(trace, config, method="heuristic").placement
        result = simulate_preshift(build_problem(trace, config), placement)
        data[name] = {
            "latency_reduction_percent": result.latency_reduction_percent,
            "energy_overhead_percent": result.energy_overhead_percent,
            "prediction_accuracy": result.prediction_accuracy,
        }
        rows.append(
            (
                name,
                result.baseline_demand_shifts,
                result.demand_shifts,
                result.latency_reduction_percent,
                result.energy_overhead_percent,
                result.prediction_accuracy,
            )
        )
    rendered = format_table(
        ("benchmark", "demand shifts (base)", "demand shifts (preshift)",
         "latency red. %", "energy ovh. %", "pred. accuracy"),
        rows,
        title=(
            "E17 (extension) — Confidence-gated speculative pre-shifting on "
            "heuristic placements"
        ),
    )
    return ExperimentOutput("e17", "Speculative pre-shifting", data, rendered)


# ---------------------------------------------------------------------------
# E20 — fault exposure under shift-minimizing placement (extension)
# ---------------------------------------------------------------------------

def run_e20(seeds=(0, 1, 2)) -> ExperimentOutput:
    """Monte-Carlo fault injection across placement methods.

    Extension experiment: since shift faults are sampled per *shift*, a
    placement that minimizes shifts also shrinks the fault budget.  Injects
    seeded fault schedules (:mod:`repro.dwm.faults`) over every sweep kernel
    for the random / declaration / heuristic placements and reports, per
    method, the injected fault count against the analytic expectation
    (``shifts x p``), the exposure (accesses served misaligned) and the
    realignment shift overhead.  The pooled fault count must land within
    3 sigma of the analytic model — the Monte-Carlo/analytic cross-check.
    """
    from repro.dwm.faults import FaultModel

    suite = benchmark_suite(SWEEP_KERNELS)
    methods = ("random", "declaration", "heuristic")
    totals = {
        method: {
            "total_shifts": 0,
            "injected_faults": 0,
            "expected_faults": 0.0,
            "fault_variance": 0.0,
            "corrupted_accesses": 0,
            "total_accesses": 0,
            "realignment_shifts": 0,
        }
        for method in methods
    }
    for name, trace in suite.items():
        config = _default_config(trace, words_per_dbc=16)
        for method in methods:
            placement = optimize_placement(trace, config, method=method).placement
            spm = ScratchpadMemory(config, placement)
            bucket = totals[method]
            for seed in seeds:
                model = FaultModel(
                    shift_error_rate=1e-3, check_interval=32, seed=seed
                )
                sim = spm.simulate(trace, fault_model=model)
                faults = sim.details["faults"]
                bucket["total_shifts"] += sim.shifts
                bucket["injected_faults"] += faults["injected"]
                bucket["expected_faults"] += faults["expected_faults"]
                bucket["fault_variance"] += faults["fault_count_sigma"] ** 2
                bucket["corrupted_accesses"] += faults["corrupted_accesses"]
                bucket["total_accesses"] += sim.accesses
                bucket["realignment_shifts"] += faults["realignment_shifts"]

    data: dict[str, dict] = {}
    rows = []
    baseline = totals["random"]
    for method in methods:
        bucket = totals[method]
        sigma = math.sqrt(bucket["fault_variance"])
        deviation = abs(bucket["injected_faults"] - bucket["expected_faults"])
        within = deviation <= 3.0 * sigma if sigma else deviation == 0.0
        exposure = (
            bucket["corrupted_accesses"] / bucket["total_accesses"]
            if bucket["total_accesses"]
            else 0.0
        )
        data[method] = {
            "total_shifts": bucket["total_shifts"],
            "injected_faults": bucket["injected_faults"],
            "expected_faults": bucket["expected_faults"],
            "fault_count_sigma": sigma,
            "within_3_sigma": within,
            "corrupted_accesses": bucket["corrupted_accesses"],
            "exposure_fraction": exposure,
            "realignment_shifts": bucket["realignment_shifts"],
            "fault_reduction_percent": reduction_percent(
                baseline["injected_faults"], bucket["injected_faults"]
            ),
        }
        rows.append(
            (
                method.upper() if method == "heuristic" else method,
                bucket["total_shifts"],
                bucket["injected_faults"],
                f"{bucket['expected_faults']:.1f}",
                f"{exposure:.4%}",
                bucket["realignment_shifts"],
                "yes" if within else "NO",
            )
        )
    rendered = format_table(
        ("placement", "shifts", "faults (MC)", "faults (analytic)",
         "exposure", "realign shifts", "within 3 sigma"),
        rows,
        title=(
            "E20 (extension) — Shift-fault exposure by placement method "
            f"({len(suite)} kernels x {len(seeds)} fault seeds, p=1e-3)"
        ),
    )
    return ExperimentOutput("e20", "Fault injection by placement", data, rendered)


# ---------------------------------------------------------------------------
# E21 — cross-paper placement comparison (extension)
# ---------------------------------------------------------------------------

def run_e21() -> ExperimentOutput:
    """Cross-paper comparison: DAC'15 heuristic vs ShiftsReduce vs generalized.

    Extension experiment for the algorithm-frontier PR: runs the paper's
    heuristic next to the ShiftsReduce bidirectional placement
    (arXiv 1903.03597) and the generalized port-aware strategies
    (arXiv 1912.03507) over the seed kernels plus two synthetic mixes, on
    single-port and two-port geometries.  Both new methods keep the
    heuristic in their candidate portfolio, so ``≤ heuristic`` per row is
    a structural invariant the benchmark gate asserts.  The footer records
    which MinLA solver backend (CP-SAT / DP) certified the probe instance.
    """
    from repro.core.cpsat import cpsat_available
    from repro.core.ilp import solve
    from repro.trace.mixes import interleave

    suite = dict(benchmark_suite(SWEEP_KERNELS))
    suite["mix_markov_zipf"] = interleave(
        [
            markov_trace(24, 600, locality=0.8, seed=21),
            zipf_trace(20, 600, alpha=1.2, seed=22),
        ],
        quantum=4,
    )
    suite["mix_pingpong_zipf"] = interleave(
        [
            pingpong_trace(8, 40),
            zipf_trace(16, 300, alpha=1.4, seed=23),
        ],
        quantum=2,
    )
    methods = ("declaration", "heuristic", "shiftsreduce", "generalized")
    data: dict[str, dict] = {}
    rows = []
    for name, trace in suite.items():
        for num_ports in (1, 2):
            config = _default_config(trace, words_per_dbc=16, num_ports=num_ports)
            shifts = {
                method: optimize_placement(
                    trace, config, method=method
                ).total_shifts
                for method in methods
            }
            best = min(
                methods, key=lambda method: (shifts[method], methods.index(method))
            )
            row_key = name if num_ports == 1 else f"{name}/2p"
            data[row_key] = {
                **{method: shifts[method] for method in methods},
                "ports": num_ports,
                "best": best,
                "shiftsreduce_vs_heuristic_percent": reduction_percent(
                    shifts["heuristic"], shifts["shiftsreduce"]
                ),
                "generalized_vs_heuristic_percent": reduction_percent(
                    shifts["heuristic"], shifts["generalized"]
                ),
            }
            rows.append(
                (
                    row_key,
                    shifts["declaration"],
                    shifts["heuristic"],
                    shifts["shiftsreduce"],
                    shifts["generalized"],
                    best,
                )
            )
    # Solver-backend footnote: which backend certifies the MinLA probe.
    probe = markov_trace(7, 80, locality=0.7, seed=24)
    problem = build_problem(probe, _default_config(probe, words_per_dbc=16))
    solution = solve(list(problem.items), problem.affinity)
    data["_solver"] = {
        "cpsat_available": cpsat_available(),
        "backend": solution.backend,
        "certified": solution.certified,
        "probe_cost": solution.cost,
    }
    rendered = format_table(
        ("instance", "declaration", "heuristic", "shiftsreduce",
         "generalized", "best"),
        rows,
        title=(
            "E21 (extension) — Cross-paper placement comparison "
            f"(MinLA solver backend: {solution.backend}"
            f"{', certified' if solution.certified else ''})"
        ),
    )
    return ExperimentOutput("e21", "Cross-paper comparison", data, rendered)


EXPERIMENTS = {
    "e1": run_e1,
    "e2": run_e2,
    "e3": run_e3,
    "e4": run_e4,
    "e5": run_e5,
    "e6": run_e6,
    "e7": run_e7,
    "e8": run_e8,
    "e9": run_e9,
    "e10": run_e10,
    "e11": run_e11,
    "e12": run_e12,
    "e13": run_e13,
    "e14": run_e14,
    "e15": run_e15,
    "e16": run_e16,
    "e17": run_e17,
    "e20": run_e20,
    "e21": run_e21,
}


def run_experiment(experiment_id: str) -> ExperimentOutput:
    """Run one experiment by id (``"e1"`` … ``"e10"``)."""
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    from repro.obs import get_registry, trace_span

    with trace_span("experiment", id=key):
        output = EXPERIMENTS[key]()
    get_registry().inc("experiments.runs", id=key)
    return output


def run_experiments(
    experiment_ids: list[str] | tuple[str, ...],
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    checkpoint=None,
) -> list[ExperimentOutput]:
    """Run several experiments, optionally fanning out over processes.

    Unknown ids are rejected up front (before any work starts).  Outputs
    come back in the requested order for any job count; each worker runs
    its experiment's internal sweeps serially (no nested pools).  Tasks
    are bare experiment-id strings dispatched to the persistent worker
    pool (:mod:`repro.analysis.pool`), so consecutive batches reuse the
    same warm workers.

    ``timeout``/``retries`` enable the fault-tolerant runner: an
    experiment that keeps failing yields a
    :class:`~repro.analysis.parallel.TaskFailure` in its slot instead of
    aborting the batch.  ``checkpoint`` (a
    :class:`~repro.analysis.checkpoint.CheckpointJournal`) journals each
    completed experiment so an interrupted batch resumes without
    recomputing.
    """
    from repro.analysis.checkpoint import run_checkpointed, task_key

    ids = [experiment_id.lower() for experiment_id in experiment_ids]
    for key in ids:
        if key not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {key!r}; available: {sorted(EXPERIMENTS)}"
            )
    keys = (
        [task_key("experiment", {"id": experiment_id}) for experiment_id in ids]
        if checkpoint is not None
        else None
    )
    return run_checkpointed(
        run_experiment,
        ids,
        keys,
        checkpoint=checkpoint,
        encode=lambda output: {
            "experiment_id": output.experiment_id,
            "title": output.title,
            "data": output.data,
            "rendered": output.rendered,
        },
        decode=lambda payload: ExperimentOutput(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            data=payload["data"],
            rendered=payload["rendered"],
        ),
        jobs=jobs,
        timeout=timeout,
        retries=retries,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: print one experiment (or ``all``); ``--jobs N`` to parallelise."""
    import sys

    argv = list(argv) if argv is not None else sys.argv[1:]
    jobs = None
    if "--jobs" in argv:
        position = argv.index("--jobs")
        try:
            jobs = int(argv[position + 1])
        except (IndexError, ValueError):
            print("--jobs requires an integer argument", file=sys.stderr)
            return 2
        del argv[position : position + 2]
    targets = argv or ["all"]
    if targets == ["all"]:
        targets = list(EXPERIMENTS)
    for output in run_experiments(targets, jobs=jobs):
        print(output.rendered)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
