"""Analysis: metrics, report rendering, parameter sweeps, experiments."""

from repro.analysis.cache import (
    ResultCache,
    cache_scope,
    placement_cache_disabled,
    placement_key,
)
from repro.analysis.checkpoint import (
    CheckpointJournal,
    flush_active_journals,
    run_checkpointed,
    task_key,
)
from repro.analysis.dse import (
    DesignPoint,
    explore,
    knee_point,
    pareto_front,
    render_front,
)
from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentOutput,
    run_experiment,
    run_experiments,
)
from repro.analysis.parallel import (
    TaskFailure,
    parallel_map,
    resilient_map,
    resolve_jobs,
)
from repro.analysis.metrics import (
    geometric_mean,
    normalize,
    reduction_percent,
    speedup,
    summarize_normalized,
)
from repro.analysis.report import (
    format_bar_chart,
    format_grouped_bars,
    format_heatmap,
    format_table,
)
from repro.analysis.sweep import (
    SweepRecord,
    normalized_by_method,
    pivot,
    sweep,
)
from repro.analysis.wear import (
    WearReport,
    lifetime_estimate_accesses,
    wear_aware_placement,
    wear_report,
)

__all__ = [
    "CheckpointJournal",
    "DesignPoint",
    "EXPERIMENTS",
    "ResultCache",
    "TaskFailure",
    "cache_scope",
    "flush_active_journals",
    "resilient_map",
    "run_checkpointed",
    "task_key",
    "explore",
    "knee_point",
    "parallel_map",
    "pareto_front",
    "placement_cache_disabled",
    "placement_key",
    "render_front",
    "resolve_jobs",
    "run_experiments",
    "ExperimentOutput",
    "SweepRecord",
    "WearReport",
    "format_bar_chart",
    "format_heatmap",
    "lifetime_estimate_accesses",
    "wear_aware_placement",
    "wear_report",
    "format_grouped_bars",
    "format_table",
    "geometric_mean",
    "normalize",
    "normalized_by_method",
    "pivot",
    "reduction_percent",
    "run_experiment",
    "speedup",
    "summarize_normalized",
    "sweep",
]
