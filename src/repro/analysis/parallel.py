"""Process-pool orchestration for sweeps, DSE grids and experiments.

The experiment harness is embarrassingly parallel: every sweep cell, DSE
design point and experiment is an independent pure function of its inputs.
This module provides the two primitives they share:

* :func:`parallel_map` — an order-preserving map over the persistent
  worker pool (:mod:`repro.analysis.pool`) with a serial fast path.
  Pool-infrastructure failures degrade to a serial rerun with a *loud*
  one-time :class:`RuntimeWarning` naming the cause (a degraded run must
  be visible, not silent).
* :func:`resilient_map` — the fault-tolerant variant: per-task **timeout**
  (a hung worker is terminated and replaced), bounded **retries** with
  exponential backoff, and **failure isolation** — a task that keeps
  crashing, hanging or raising yields a :class:`TaskFailure` record in its
  result slot instead of killing the whole map.  Sibling tasks always run
  to completion.

Both primitives share one pool of long-lived workers per (start method,
job count), spawned on first use and reused across maps — tasks pay a
pipe send/recv, not a process spawn.  Bulk inputs (traces) should cross
the boundary as :mod:`repro.memory.shm` handles so the per-task pickle
stays small.

Shared policy: the job count resolves as ``--jobs`` flag > ``REPRO_JOBS``
env var > serial, capped at the host's logical CPU count (a one-time
warning reports oversubscription), and the start method as
``REPRO_MP_START`` > fork > spawn.  Workers run with ``REPRO_JOBS=1`` so
a parallel experiment that internally calls a sweep does not fork a pool
per worker, and rebuild env-configured state (the placement cache) on
startup so the ``spawn`` start method behaves like ``fork``.

Determinism contract (both primitives): results come back in task order
regardless of worker scheduling, so parallel runs are byte-identical to
serial ones.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import InjectedFaultError
from repro.obs import get_registry, trace_span

#: Environment variable consulted when no explicit ``jobs`` is given.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable overriding the multiprocessing start method.
MP_START_ENV = "REPRO_MP_START"

#: Default exponential-backoff base between retry attempts (seconds).
DEFAULT_BACKOFF_SECONDS = 0.05

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: One-time warning keys already emitted (see :func:`_warn_once`).
_WARNED: set[str] = set()


def _warn_once(key: str, message: str) -> None:
    """Emit ``message`` as a RuntimeWarning once per process per ``key``."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _reset_warnings() -> None:
    """Forget emitted one-time warnings (test hook)."""
    _WARNED.clear()


@dataclass(frozen=True)
class TaskFailure:
    """Recorded outcome of a task that exhausted its retry budget.

    Appears in the result list at the failed task's index so sibling
    results keep their positions.  ``kind`` is ``"error"`` (the task
    raised), ``"timeout"`` (exceeded the per-task timeout) or ``"crash"``
    (the worker process died without reporting a result).
    """

    index: int
    error: str
    attempts: int
    kind: str = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"task #{self.index} failed after {self.attempts} attempt(s) "
            f"[{self.kind}]: {self.error}"
        )


def _cpu_count() -> int:
    """Logical CPU count (monkeypatchable seam for tests)."""
    return os.cpu_count() or 1


def _cap_jobs(jobs: int, source: str) -> int:
    """Clamp ``jobs`` to the host CPU count, warning once on excess."""
    cap = _cpu_count()
    if jobs > cap:
        _warn_once(
            "resolve-jobs-cap",
            f"requested {jobs} jobs via {source} but the host has only "
            f"{cap} CPU(s); capping at {cap}",
        )
        return cap
    return jobs


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit argument > ``REPRO_JOBS`` > 1.

    The result is capped at the host's logical CPU count — workers beyond
    that only add contention — with a one-time :class:`RuntimeWarning`
    naming the oversubscribing source.  Non-numeric or non-positive values
    resolve to 1 (serial) rather than erroring — the environment variable
    is a tuning knob, not an API — but a garbage value is reported once so
    a silently serial run is traceable.
    """
    if jobs is not None:
        return _cap_jobs(max(1, int(jobs)), "--jobs")
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        try:
            return _cap_jobs(max(1, int(raw)), JOBS_ENV)
        except ValueError:
            _warn_once(
                "resolve-jobs",
                f"ignoring non-numeric {JOBS_ENV}={raw!r}; running serially",
            )
            return 1
    return 1


def _pool_start_method() -> str:
    """Start-method name: ``REPRO_MP_START`` > fork > spawn."""
    import multiprocessing

    method = os.environ.get(MP_START_ENV, "").strip()
    if method:
        return method
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def _pool_context():
    """Multiprocessing context: ``REPRO_MP_START`` > fork > spawn."""
    import multiprocessing

    return multiprocessing.get_context(_pool_start_method())


def _worker_init() -> None:
    """Per-worker setup: no nested pools; rebuild env-configured state.

    With the ``spawn`` start method workers begin from a fresh interpreter,
    so process-global state (like the placement cache installed by the CLI)
    must be reconstructed from the environment.
    """
    os.environ[JOBS_ENV] = "1"
    from repro.analysis.cache import ensure_configured_from_env
    from repro.chaos import ensure_installed_from_env

    ensure_configured_from_env()
    ensure_installed_from_env()


def parallel_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task] | Sequence[_Task],
    jobs: int | None = None,
    chunksize: int = 1,
) -> list[_Result]:
    """Map ``fn`` over ``tasks``, preserving task order in the result list.

    Runs serially when the effective job count is 1 or there is at most one
    task; otherwise fans out over a process pool.  Pool-infrastructure
    failures (no forking allowed, unpicklable task, broken worker) degrade
    to a serial rerun — by construction ``fn`` is deterministic and
    side-effect-free here, so rerunning is safe — and emit a one-time
    :class:`RuntimeWarning` naming the cause, so a degraded run never
    passes for a parallel one silently.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    registry = get_registry()
    if jobs <= 1 or len(tasks) <= 1:
        registry.inc("parallel.tasks", len(tasks), mode="serial")
        with trace_span("parallel_map", mode="serial", tasks=len(tasks)):
            return [fn(task) for task in tasks]
    from repro.analysis import pool as pool_mod

    registry.gauge("parallel.jobs", jobs)
    try:
        with trace_span("parallel_map", mode="pool", tasks=len(tasks)):
            worker_pool = pool_mod.get_pool(jobs)
            results = worker_pool.run(fn, tasks, propagate=True)
        registry.inc("parallel.tasks", len(tasks), mode="pool")
        return results
    except (
        OSError,
        InjectedFaultError,
        pool_mod.PoolDispatchError,
        pool_mod.PoolCrashError,
    ) as exc:
        _warn_once(
            "parallel-map-fallback",
            "parallel_map: process pool unavailable "
            f"({type(exc).__name__}: {exc}); falling back to serial execution",
        )
        from repro.robust import record_degradation

        record_degradation(
            "map", "pooled", "serial",
            f"{type(exc).__name__}: {exc}", warn=False,
        )
        registry.inc("parallel.fallbacks")
        registry.inc("parallel.tasks", len(tasks), mode="serial")
        with trace_span("parallel_map", mode="serial-fallback", tasks=len(tasks)):
            return [fn(task) for task in tasks]


# ---------------------------------------------------------------------------
# Resilient (timeout + retry + failure isolation) map
# ---------------------------------------------------------------------------

def _run_serial_with_retries(fn, tasks, retries, backoff_seconds, on_result):
    """Inline serial path (no timeout enforcement, retries still honoured)."""
    registry = get_registry()
    results: list = [None] * len(tasks)
    for index, task in enumerate(tasks):
        error = ""
        for attempt in range(retries + 1):
            try:
                results[index] = fn(task)
                break
            except Exception as exc:  # noqa: BLE001 - isolated per task
                error = f"{type(exc).__name__}: {exc}"
                if attempt < retries:
                    registry.inc("resilient.retries")
                    time.sleep(backoff_seconds * (2 ** attempt))
        else:
            results[index] = TaskFailure(
                index=index, error=error, attempts=retries + 1, kind="error"
            )
            registry.inc("resilient.failures", kind="error")
        if not isinstance(results[index], TaskFailure):
            registry.inc("resilient.tasks", mode="serial")
            if on_result is not None:
                on_result(index, results[index])
    return results


def resilient_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task] | Sequence[_Task],
    jobs: int | None = None,
    *,
    timeout: float | None = None,
    retries: int = 0,
    backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """Fault-tolerant order-preserving map.

    Runs on the persistent worker pool: on timeout the (hung) worker is
    terminated and replaced, and the task retried (with exponential
    backoff) up to ``retries`` times — always on a live worker.  A task
    that exhausts its budget — by raising, hanging, or crashing its
    worker — contributes a :class:`TaskFailure` at its index; sibling
    tasks are unaffected.

    ``on_result(index, result)`` fires in the parent as each task
    *succeeds* (in completion order, not task order) — the checkpoint
    journal hook, so completed cells survive a later interrupt.

    With ``timeout=None`` and an effective job count of 1 the map runs
    inline (retries still honoured); any timeout forces worker processes
    even for serial runs, since an in-process hang cannot be interrupted.
    A function or task that cannot be pickled into workers degrades to
    the inline path with a one-time warning — timeouts are then best
    effort (unenforced), which the warning spells out.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    if not tasks:
        return []
    if timeout is None and jobs <= 1:
        with trace_span("resilient_map", mode="serial", tasks=len(tasks)):
            return _run_serial_with_retries(
                fn, tasks, retries, backoff_seconds, on_result
            )
    from repro.analysis import pool as pool_mod

    with trace_span(
        "resilient_map", mode="pool", tasks=len(tasks), jobs=jobs
    ):
        try:
            worker_pool = pool_mod.get_pool(jobs)
            return worker_pool.run(
                fn,
                tasks,
                timeout=timeout,
                retries=retries,
                backoff_seconds=backoff_seconds,
                on_result=on_result,
            )
        except pool_mod.PoolDispatchError as exc:
            _warn_once(
                "resilient-map-fallback",
                "resilient_map: cannot ship tasks to pool workers "
                f"({exc}); falling back to serial execution without "
                "timeout enforcement",
            )
            from repro.robust import record_degradation

            record_degradation(
                "map", "pooled", "serial", str(exc), warn=False
            )
            get_registry().inc("parallel.fallbacks")
            return _run_serial_with_retries(
                fn, tasks, retries, backoff_seconds, on_result
            )
