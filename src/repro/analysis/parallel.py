"""Process-pool orchestration for sweeps, DSE grids and experiments.

The experiment harness is embarrassingly parallel: every sweep cell, DSE
design point and experiment is an independent pure function of its inputs.
This module provides the one primitive they all share —
:func:`parallel_map`, an order-preserving process-pool map with a serial
fast path — plus the job-count policy (``--jobs`` flag > ``REPRO_JOBS`` env
var > serial).

Design constraints:

* **Deterministic ordering** — results come back in task order regardless
  of worker scheduling (``Executor.map`` semantics), so parallel runs are
  byte-identical to serial ones.
* **Spawn-safe** — workers and tasks are top-level picklables; the start
  method defaults to ``fork`` where available (cheap on Linux) and falls
  back to ``spawn``; override with ``REPRO_MP_START``.
* **Serial fallback** — when ``jobs <= 1``, when there is at most one task,
  or when the pool cannot be created/used at all (sandboxed interpreters,
  unpicklable payloads, broken workers), the map silently degrades to a
  plain loop.  Exceptions raised by the *task function itself* still
  surface: the serial rerun hits the same error.
* **No nested pools** — workers run with ``REPRO_JOBS=1`` so a parallel
  experiment that internally calls a sweep does not fork a pool per worker.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence, TypeVar

#: Environment variable consulted when no explicit ``jobs`` is given.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable overriding the multiprocessing start method.
MP_START_ENV = "REPRO_MP_START"

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit argument > ``REPRO_JOBS`` > 1.

    Non-numeric or non-positive values resolve to 1 (serial) rather than
    erroring — the environment variable is a tuning knob, not an API.
    """
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            return 1
    return 1


def _pool_context():
    """Multiprocessing context: ``REPRO_MP_START`` > fork > spawn."""
    import multiprocessing

    method = os.environ.get(MP_START_ENV, "").strip()
    if method:
        return multiprocessing.get_context(method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _worker_init() -> None:
    """Per-worker setup: no nested pools; rebuild env-configured state.

    With the ``spawn`` start method workers begin from a fresh interpreter,
    so process-global state (like the placement cache installed by the CLI)
    must be reconstructed from the environment.
    """
    os.environ[JOBS_ENV] = "1"
    from repro.analysis.cache import ensure_configured_from_env

    ensure_configured_from_env()


def parallel_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task] | Sequence[_Task],
    jobs: int | None = None,
    chunksize: int = 1,
) -> list[_Result]:
    """Map ``fn`` over ``tasks``, preserving task order in the result list.

    Runs serially when the effective job count is 1 or there is at most one
    task; otherwise fans out over a process pool.  Pool-infrastructure
    failures (no forking allowed, unpicklable task, broken worker) degrade
    to a serial rerun — by construction ``fn`` is deterministic and
    side-effect-free here, so rerunning is safe.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    import concurrent.futures
    import pickle

    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            mp_context=_pool_context(),
            initializer=_worker_init,
        ) as pool:
            return list(pool.map(fn, tasks, chunksize=chunksize))
    except (
        OSError,
        pickle.PicklingError,
        concurrent.futures.process.BrokenProcessPool,
    ):
        return [fn(task) for task in tasks]
