"""Process-pool orchestration for sweeps, DSE grids and experiments.

The experiment harness is embarrassingly parallel: every sweep cell, DSE
design point and experiment is an independent pure function of its inputs.
This module provides the two primitives they share:

* :func:`parallel_map` — an order-preserving process-pool map with a serial
  fast path.  Pool-infrastructure failures degrade to a serial rerun with a
  *loud* one-time :class:`RuntimeWarning` naming the cause (a degraded run
  must be visible, not silent).
* :func:`resilient_map` — the fault-tolerant variant: each task runs in its
  own worker process with a per-task **timeout**, bounded **retries** with
  exponential backoff, and **failure isolation** — a task that keeps
  crashing, hanging or raising yields a :class:`TaskFailure` record in its
  result slot instead of killing the whole map.  Sibling tasks always run
  to completion.

Shared policy: the job count resolves as ``--jobs`` flag > ``REPRO_JOBS``
env var > serial, and the start method as ``REPRO_MP_START`` > fork >
spawn.  Workers run with ``REPRO_JOBS=1`` so a parallel experiment that
internally calls a sweep does not fork a pool per worker, and rebuild
env-configured state (the placement cache) on startup so the ``spawn``
start method behaves like ``fork``.

Determinism contract (both primitives): results come back in task order
regardless of worker scheduling, so parallel runs are byte-identical to
serial ones.
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import get_registry, trace_span

#: Environment variable consulted when no explicit ``jobs`` is given.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable overriding the multiprocessing start method.
MP_START_ENV = "REPRO_MP_START"

#: Default exponential-backoff base between retry attempts (seconds).
DEFAULT_BACKOFF_SECONDS = 0.05

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: One-time warning keys already emitted (see :func:`_warn_once`).
_WARNED: set[str] = set()


def _warn_once(key: str, message: str) -> None:
    """Emit ``message`` as a RuntimeWarning once per process per ``key``."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _reset_warnings() -> None:
    """Forget emitted one-time warnings (test hook)."""
    _WARNED.clear()


@dataclass(frozen=True)
class TaskFailure:
    """Recorded outcome of a task that exhausted its retry budget.

    Appears in the result list at the failed task's index so sibling
    results keep their positions.  ``kind`` is ``"error"`` (the task
    raised), ``"timeout"`` (exceeded the per-task timeout) or ``"crash"``
    (the worker process died without reporting a result).
    """

    index: int
    error: str
    attempts: int
    kind: str = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"task #{self.index} failed after {self.attempts} attempt(s) "
            f"[{self.kind}]: {self.error}"
        )


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit argument > ``REPRO_JOBS`` > 1.

    Non-numeric or non-positive values resolve to 1 (serial) rather than
    erroring — the environment variable is a tuning knob, not an API — but
    a garbage value is reported once so a silently serial run is traceable.
    """
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            _warn_once(
                "resolve-jobs",
                f"ignoring non-numeric {JOBS_ENV}={raw!r}; running serially",
            )
            return 1
    return 1


def _pool_context():
    """Multiprocessing context: ``REPRO_MP_START`` > fork > spawn."""
    import multiprocessing

    method = os.environ.get(MP_START_ENV, "").strip()
    if method:
        return multiprocessing.get_context(method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _worker_init() -> None:
    """Per-worker setup: no nested pools; rebuild env-configured state.

    With the ``spawn`` start method workers begin from a fresh interpreter,
    so process-global state (like the placement cache installed by the CLI)
    must be reconstructed from the environment.
    """
    os.environ[JOBS_ENV] = "1"
    from repro.analysis.cache import ensure_configured_from_env

    ensure_configured_from_env()


def parallel_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task] | Sequence[_Task],
    jobs: int | None = None,
    chunksize: int = 1,
) -> list[_Result]:
    """Map ``fn`` over ``tasks``, preserving task order in the result list.

    Runs serially when the effective job count is 1 or there is at most one
    task; otherwise fans out over a process pool.  Pool-infrastructure
    failures (no forking allowed, unpicklable task, broken worker) degrade
    to a serial rerun — by construction ``fn`` is deterministic and
    side-effect-free here, so rerunning is safe — and emit a one-time
    :class:`RuntimeWarning` naming the cause, so a degraded run never
    passes for a parallel one silently.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    registry = get_registry()
    if jobs <= 1 or len(tasks) <= 1:
        registry.inc("parallel.tasks", len(tasks), mode="serial")
        with trace_span("parallel_map", mode="serial", tasks=len(tasks)):
            return [fn(task) for task in tasks]
    import concurrent.futures
    import pickle

    registry.gauge("parallel.jobs", jobs)
    try:
        with trace_span("parallel_map", mode="pool", tasks=len(tasks)):
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(tasks)),
                mp_context=_pool_context(),
                initializer=_worker_init,
            ) as pool:
                results = list(pool.map(fn, tasks, chunksize=chunksize))
        registry.inc("parallel.tasks", len(tasks), mode="pool")
        return results
    except (
        OSError,
        pickle.PicklingError,
        # pickle reports unpicklable callables/tasks as AttributeError or
        # TypeError (not PicklingError) depending on the object.
        AttributeError,
        TypeError,
        concurrent.futures.process.BrokenProcessPool,
    ) as exc:
        _warn_once(
            "parallel-map-fallback",
            "parallel_map: process pool unavailable "
            f"({type(exc).__name__}: {exc}); falling back to serial execution",
        )
        registry.inc("parallel.fallbacks")
        registry.inc("parallel.tasks", len(tasks), mode="serial")
        with trace_span("parallel_map", mode="serial-fallback", tasks=len(tasks)):
            return [fn(task) for task in tasks]


# ---------------------------------------------------------------------------
# Resilient (timeout + retry + failure isolation) map
# ---------------------------------------------------------------------------

def _child_entry(fn, task, conn) -> None:
    """Worker body for :func:`resilient_map`: run one task, report once."""
    _worker_init()
    try:
        payload = (True, fn(task))
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        payload = (False, f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
    except Exception:
        # Unpicklable result / broken pipe: the parent sees EOF and treats
        # this attempt as a crash.
        pass
    finally:
        conn.close()


class _Running:
    """Bookkeeping for one in-flight task attempt."""

    __slots__ = ("proc", "conn", "deadline")

    def __init__(self, proc, conn, deadline) -> None:
        self.proc = proc
        self.conn = conn
        self.deadline = deadline


def _run_serial_with_retries(fn, tasks, retries, backoff_seconds, on_result):
    """Inline serial path (no timeout enforcement, retries still honoured)."""
    registry = get_registry()
    results: list = [None] * len(tasks)
    for index, task in enumerate(tasks):
        error = ""
        for attempt in range(retries + 1):
            try:
                results[index] = fn(task)
                break
            except Exception as exc:  # noqa: BLE001 - isolated per task
                error = f"{type(exc).__name__}: {exc}"
                if attempt < retries:
                    registry.inc("resilient.retries")
                    time.sleep(backoff_seconds * (2 ** attempt))
        else:
            results[index] = TaskFailure(
                index=index, error=error, attempts=retries + 1, kind="error"
            )
            registry.inc("resilient.failures", kind="error")
        if not isinstance(results[index], TaskFailure):
            registry.inc("resilient.tasks", mode="serial")
            if on_result is not None:
                on_result(index, results[index])
    return results


def resilient_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task] | Sequence[_Task],
    jobs: int | None = None,
    *,
    timeout: float | None = None,
    retries: int = 0,
    backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """Fault-tolerant order-preserving map.

    Unlike :func:`parallel_map`, every task attempt runs in its *own*
    worker process, which is what makes a hung task killable: on timeout
    the worker is terminated and the task retried (with exponential
    backoff) up to ``retries`` times.  A task that exhausts its budget —
    by raising, hanging, or crashing its worker — contributes a
    :class:`TaskFailure` at its index; sibling tasks are unaffected.

    ``on_result(index, result)`` fires in the parent as each task
    *succeeds* (in completion order, not task order) — the checkpoint
    journal hook, so completed cells survive a later interrupt.

    With ``timeout=None`` and an effective job count of 1 the map runs
    inline (retries still honoured); any timeout forces worker processes
    even for serial runs, since an in-process hang cannot be interrupted.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    if not tasks:
        return []
    if timeout is None and jobs <= 1:
        with trace_span("resilient_map", mode="serial", tasks=len(tasks)):
            return _run_serial_with_retries(
                fn, tasks, retries, backoff_seconds, on_result
            )
    with trace_span(
        "resilient_map", mode="workers", tasks=len(tasks), jobs=jobs
    ):
        return _resilient_worker_loop(
            fn, tasks, jobs, timeout, retries, backoff_seconds, on_result
        )


def _resilient_worker_loop(
    fn,
    tasks: list,
    jobs: int,
    timeout: float | None,
    retries: int,
    backoff_seconds: float,
    on_result: Callable[[int, object], None] | None,
) -> list:
    """Per-task worker-process scheduler behind :func:`resilient_map`."""
    from multiprocessing.connection import wait as _wait

    ctx = _pool_context()
    results: list = [None] * len(tasks)
    pending: deque[int] = deque(range(len(tasks)))
    running: dict[int, _Running] = {}
    failures: dict[int, int] = {}
    ready_at: dict[int, float] = {}

    registry = get_registry()

    def handle_failure(index: int, kind: str, message: str) -> None:
        failures[index] = failures.get(index, 0) + 1
        if failures[index] > retries:
            results[index] = TaskFailure(
                index=index, error=message, attempts=failures[index], kind=kind
            )
            registry.inc("resilient.failures", kind=kind)
        else:
            registry.inc("resilient.retries")
            ready_at[index] = time.monotonic() + backoff_seconds * (
                2 ** (failures[index] - 1)
            )
            pending.append(index)

    def reap(index: int) -> None:
        entry = running.pop(index)
        entry.conn.close()
        entry.proc.join()

    try:
        while pending or running:
            now = time.monotonic()
            # Launch up to ``jobs`` attempts whose backoff has elapsed.
            for _ in range(len(pending)):
                if len(running) >= jobs:
                    break
                index = pending.popleft()
                if ready_at.get(index, 0.0) > now:
                    pending.append(index)
                    continue
                receiver, sender = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_entry,
                    args=(fn, tasks[index], sender),
                    daemon=True,
                )
                proc.start()
                sender.close()
                deadline = now + timeout if timeout is not None else None
                running[index] = _Running(proc, receiver, deadline)
            if not running:
                # Everything left is backing off; sleep until the earliest.
                soonest = min(ready_at[index] for index in pending)
                time.sleep(max(0.0, soonest - time.monotonic()))
                continue
            # Wait for results, bounded by the nearest deadline.
            wait_timeout = 0.1
            if timeout is not None:
                nearest = min(
                    entry.deadline
                    for entry in running.values()
                    if entry.deadline is not None
                )
                wait_timeout = max(0.0, min(wait_timeout, nearest - now))
            conn_index = {entry.conn: i for i, entry in running.items()}
            for conn in _wait(list(conn_index), timeout=wait_timeout):
                index = conn_index[conn]
                try:
                    ok, payload = conn.recv()
                except (EOFError, OSError):
                    reap(index)
                    handle_failure(
                        index, "crash", "worker exited without a result"
                    )
                    continue
                reap(index)
                if ok:
                    results[index] = payload
                    registry.inc("resilient.tasks", mode="worker")
                    if on_result is not None:
                        on_result(index, payload)
                else:
                    handle_failure(index, "error", payload)
            # Enforce deadlines and collect workers that died silently.
            now = time.monotonic()
            for index in list(running):
                entry = running[index]
                if entry.deadline is not None and now >= entry.deadline:
                    entry.proc.terminate()
                    reap(index)
                    handle_failure(
                        index,
                        "timeout",
                        f"exceeded task timeout of {timeout:g}s",
                    )
                elif not entry.proc.is_alive() and not entry.conn.poll():
                    reap(index)
                    handle_failure(
                        index, "crash", "worker exited without a result"
                    )
    finally:
        for entry in running.values():
            entry.proc.terminate()
            entry.conn.close()
            entry.proc.join()
    return results
