"""Benchmark reference artifacts: normalize + regression comparison.

``results/BENCH_e18.json``, ``BENCH_e19.json`` and ``BENCH_e20.json`` each
grew their own shape.  This module makes them comparable:

* :func:`normalize` lowers any raw benchmark payload into a
  :class:`~repro.obs.manifest.RunManifest` — numeric and boolean leaves
  become flat dotted ``metrics`` (``simulation.1p-lazy.speedup``), every
  other leaf (lists, strings, nulls) is carried losslessly in ``extra``.
* :func:`denormalize` inverts it exactly (golden-tested round trip over
  the committed artifacts).
* :func:`compare` diffs two manifests metric-by-metric with configurable
  relative tolerances and direction inference, producing the
  :class:`ComparisonReport` behind ``repro bench compare`` — the CI
  bench-regression gate.

Direction inference (:func:`classify_metric`) is name-based:

* **exact** — boolean values and names matching ``*exact*``,
  ``*identical*``, ``*within_3_sigma*``: any change is a regression
  (these encode correctness, not speed).
* **higher-better** — ``*_per_sec*``, ``*speedup*``, ``*reduction*``,
  ``*hits`` ...: a drop beyond tolerance is a regression.
* **lower-better** — ``*seconds*``, ``*misses*``, ``*faults*``,
  ``*shifts*`` ...: a rise beyond tolerance is a regression.
* **info** — anything else (``num_items``, ``cpu_count``): reported,
  never gated.

A metric present in the baseline but missing from the candidate is always
a regression (coverage must not silently shrink); new candidate-only
metrics are fine.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ReproError
from repro.obs.manifest import RunManifest

__all__ = [
    "ComparisonReport",
    "MetricDelta",
    "classify_metric",
    "compare",
    "denormalize",
    "flatten_payload",
    "load_reference",
    "normalize",
    "unflatten_payload",
]

#: Separator joining nested payload keys into dotted metric names.
SEPARATOR = "."

#: Substring patterns classifying a metric as exactness-gated.
EXACT_PATTERNS = ("exact", "identical", "within_3_sigma", "within_sigma")

#: Substring patterns classifying a metric as higher-is-better.
HIGHER_PATTERNS = (
    "per_sec",
    "per_second",
    "speedup",
    "throughput",
    "reduction",
    "hits",
)

#: Substring patterns classifying a metric as lower-is-better.
LOWER_PATTERNS = (
    "seconds",
    "misses",
    "faults",
    "fault_count",
    "shifts",
    "corrupted",
    "corrupt",
    "exposure",
    "misalignment",
    "realignments",
    "quarantined",
)

#: Leaf-name patterns recording the host's parallel capacity.  When one of
#: these differs between two manifests, speedup metrics in the same section
#: were measured on machines with different core budgets and cannot be
#: compared like-for-like — they are annotated, not gated.
HOST_CAPACITY_PATTERNS = ("cpu_count", "effective_workers", "effective_jobs")

_BENCH_NAME = re.compile(r"BENCH_([A-Za-z0-9_-]+)\.json$")


def flatten_payload(
    payload: Mapping[str, Any],
    prefix: str = "",
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Split a nested payload into (numeric/bool metrics, other leaves).

    Both outputs map dotted paths to leaves.  Raises
    :class:`~repro.errors.ReproError` on keys that would make the mapping
    ambiguous (non-string keys, keys containing the separator) and on
    empty nested dicts (they would vanish in the round trip).
    """
    metrics: dict[str, Any] = {}
    extra: dict[str, Any] = {}
    for key, value in payload.items():
        if not isinstance(key, str):
            raise ReproError(f"benchmark payload key {key!r} is not a string")
        if SEPARATOR in key:
            raise ReproError(
                f"benchmark payload key {key!r} contains {SEPARATOR!r}; "
                "dotted keys cannot round-trip through metric names"
            )
        path = f"{prefix}{SEPARATOR}{key}" if prefix else key
        if isinstance(value, dict):
            if not value:
                raise ReproError(
                    f"benchmark payload has empty section at {path!r}; "
                    "empty dicts cannot round-trip"
                )
            sub_metrics, sub_extra = flatten_payload(value, path)
            metrics.update(sub_metrics)
            extra.update(sub_extra)
        elif isinstance(value, bool) or isinstance(value, (int, float)):
            metrics[path] = value
        else:
            extra[path] = value
    return metrics, extra


def unflatten_payload(
    metrics: Mapping[str, Any],
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Rebuild the nested payload from dotted metric/extra leaves."""
    merged: dict[str, Any] = dict(metrics)
    if extra:
        merged.update(extra)
    root: dict[str, Any] = {}
    for path in sorted(merged):
        parts = path.split(SEPARATOR)
        node = root
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise ReproError(
                    f"metric path {path!r} collides with a leaf value"
                )
        node[parts[-1]] = merged[path]
    return root


def source_from_path(path: str | Path) -> str:
    """Infer the run id from a ``BENCH_<id>.json`` filename (else the stem)."""
    name = Path(path).name
    match = _BENCH_NAME.search(name)
    if match:
        return match.group(1)
    return Path(path).stem


def normalize(
    payload: Mapping[str, Any],
    source: str,
    **manifest_fields: Any,
) -> RunManifest:
    """Lower one raw ``BENCH_e*.json`` payload into a manifest.

    ``source`` becomes the run id (``e18``/``e19``/``e20``...).  Extra
    keyword arguments pass through to :class:`RunManifest` (seed, engine,
    geometry...).  The transform is lossless: :func:`denormalize` returns
    the original payload exactly.
    """
    metrics, extra = flatten_payload(payload)
    return RunManifest(
        kind="bench",
        run_id=source,
        metrics=metrics,
        extra=extra,
        **manifest_fields,
    )


def denormalize(manifest: RunManifest) -> dict[str, Any]:
    """Reconstruct the raw benchmark payload from a normalized manifest."""
    return unflatten_payload(manifest.metrics, manifest.extra)


def load_reference(path: str | Path) -> RunManifest:
    """Load a manifest *or* raw benchmark JSON (auto-normalized).

    Accepts both the committed raw ``results/BENCH_e*.json`` artifacts and
    already-normalized manifest files, so the CLI never needs to be told
    which one it was handed.
    """
    import json

    text = Path(path).read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: expected a JSON object")
    if payload.get("manifest"):
        return RunManifest.from_dict(payload)
    return normalize(payload, source_from_path(path))


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

def classify_metric(name: str, value: Any = None) -> str:
    """Direction of one metric: ``exact``/``higher``/``lower``/``info``."""
    lowered = name.lower()
    if isinstance(value, bool):
        return "exact"
    if any(pattern in lowered for pattern in EXACT_PATTERNS):
        return "exact"
    if any(pattern in lowered for pattern in HIGHER_PATTERNS):
        return "higher"
    if any(pattern in lowered for pattern in LOWER_PATTERNS):
        return "lower"
    return "info"


def _is_host_capacity(name: str) -> bool:
    """True if ``name``'s leaf records host parallel capacity."""
    leaf = name.rsplit(SEPARATOR, 1)[-1].lower()
    return any(pattern in leaf for pattern in HOST_CAPACITY_PATTERNS)


@dataclass(frozen=True)
class MetricDelta:
    """Comparison outcome for one metric name."""

    name: str
    baseline: Any
    candidate: Any
    direction: str
    tolerance: float
    relative_change: float | None
    status: str  # "ok" | "regression" | "improved" | "missing" | "new" | "info"

    @property
    def is_regression(self) -> bool:
        return self.status in ("regression", "missing")


@dataclass
class ComparisonReport:
    """Full metric-by-metric diff of two manifests."""

    baseline_id: str
    candidate_id: str
    deltas: list[MetricDelta] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [delta for delta in self.deltas if delta.is_regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Plain-text report table (regressions first)."""
        from repro.analysis.report import format_table

        def fmt(value: Any) -> str:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return str(value)
            return f"{value:g}"

        ordered = sorted(
            self.deltas,
            key=lambda delta: (not delta.is_regression, delta.name),
        )
        rows = [
            (
                delta.name,
                fmt(delta.baseline),
                fmt(delta.candidate),
                (
                    f"{delta.relative_change:+.1%}"
                    if delta.relative_change is not None
                    else "-"
                ),
                delta.direction,
                delta.status.upper() if delta.is_regression else delta.status,
            )
            for delta in ordered
        ]
        verdict = "PASS" if self.ok else f"FAIL ({len(self.regressions)} regression(s))"
        table = format_table(
            ("metric", "baseline", "candidate", "change", "direction", "status"),
            rows,
            title=(
                f"bench compare: {self.baseline_id} -> {self.candidate_id} "
                f"[{verdict}]"
            ),
        )
        if self.notes:
            notes = "\n".join(f"  - {note}" for note in self.notes)
            return f"{table}\nnotes:\n{notes}"
        return table


def _tolerance_for(
    name: str,
    direction: str,
    default_tolerance: float,
    overrides: Mapping[str, float] | None,
) -> float:
    """Effective relative tolerance: glob overrides beat the default."""
    if overrides:
        for pattern, tolerance in overrides.items():
            if fnmatchcase(name, pattern):
                return tolerance
    if direction == "exact":
        return 0.0
    return default_tolerance


def _delta_status(
    direction: str,
    baseline: Any,
    candidate: Any,
    tolerance: float,
) -> tuple[str, float | None]:
    """Status + relative change of one shared metric."""
    if direction == "exact":
        if baseline == candidate:
            return "ok", 0.0
        return "regression", None
    if not isinstance(baseline, (int, float)) or not isinstance(
        candidate, (int, float)
    ):
        return ("ok" if baseline == candidate else "regression"), None
    if baseline == 0:
        change = None if candidate == 0 else float("inf")
        if candidate == 0:
            return "ok", 0.0
        if direction == "info":
            return "info", change
        worse = candidate < 0 if direction == "higher" else candidate > 0
        return ("regression" if worse else "improved"), change
    change = (candidate - baseline) / abs(baseline)
    if direction == "info":
        return "info", change
    if direction == "higher":
        if change < -tolerance:
            return "regression", change
        return ("improved" if change > tolerance else "ok"), change
    # lower-is-better
    if change > tolerance:
        return "regression", change
    return ("improved" if change < -tolerance else "ok"), change


def compare(
    baseline: RunManifest,
    candidate: RunManifest,
    *,
    default_tolerance: float = 0.10,
    tolerances: Mapping[str, float] | None = None,
) -> ComparisonReport:
    """Diff ``candidate`` against ``baseline`` metric-by-metric.

    ``default_tolerance`` is the relative slack applied to direction-gated
    metrics (0.10 = 10%); ``tolerances`` maps glob patterns over metric
    names to per-metric overrides.  Exactness metrics ignore both and are
    gated at 0%.  See the module docstring for the regression rules.
    """
    if default_tolerance < 0:
        raise ReproError(
            f"default_tolerance must be >= 0, got {default_tolerance}"
        )
    report = ComparisonReport(
        baseline_id=baseline.run_id,
        candidate_id=candidate.run_id,
    )
    names = sorted(set(baseline.metrics) | set(candidate.metrics))
    # Sections whose recorded host capacity (cpu_count/effective_workers...)
    # differs between the runs: speedup metrics there were measured on
    # machines with different core budgets, so they are annotated as info
    # instead of being gated.  A top-level mismatch (scope "") covers all.
    capacity_mismatch: dict[str, list[str]] = {}
    for name in names:
        if not _is_host_capacity(name):
            continue
        if name not in baseline.metrics or name not in candidate.metrics:
            continue
        base_value = baseline.metrics[name]
        cand_value = candidate.metrics[name]
        if base_value == cand_value:
            continue
        scope = name.rsplit(SEPARATOR, 1)[0] if SEPARATOR in name else ""
        capacity_mismatch.setdefault(scope, []).append(
            f"{name} {base_value!r} -> {cand_value!r}"
        )
    for name in names:
        in_base = name in baseline.metrics
        in_cand = name in candidate.metrics
        base_value = baseline.metrics.get(name)
        cand_value = candidate.metrics.get(name)
        direction = classify_metric(name, base_value if in_base else cand_value)
        tolerance = _tolerance_for(name, direction, default_tolerance, tolerances)
        if not in_cand:
            status: str = "missing"
            change: float | None = None
        elif not in_base:
            status, change = "new", None
        else:
            status, change = _delta_status(
                direction, base_value, cand_value, tolerance
            )
            if "speedup" in name.lower() and status != "info":
                reasons = [
                    mismatch
                    for scope, mismatches in capacity_mismatch.items()
                    if scope == "" or name.startswith(scope + SEPARATOR)
                    for mismatch in mismatches
                ]
                if reasons:
                    status = "info"
                    report.notes.append(
                        f"{name}: hosts differ in parallel capacity "
                        f"({'; '.join(reasons)}); speedup annotated, not gated"
                    )
        report.deltas.append(
            MetricDelta(
                name=name,
                baseline=base_value,
                candidate=cand_value,
                direction=direction,
                tolerance=tolerance,
                relative_change=change,
                status=status,
            )
        )
    return report


def compare_files(
    baseline_path: str | Path,
    candidate_path: str | Path,
    *,
    default_tolerance: float = 0.10,
    tolerances: Mapping[str, float] | None = None,
) -> ComparisonReport:
    """File-level :func:`compare`: loads manifests or raw BENCH payloads."""
    return compare(
        load_reference(baseline_path),
        load_reference(candidate_path),
        default_tolerance=default_tolerance,
        tolerances=tolerances,
    )
