"""Design-space exploration driver with Pareto filtering.

Generalises the sweep harness into the study an architect actually runs:
enumerate DWM geometries (DBC length × ports × shift policy), evaluate each
with a chosen placement method, collect latency / energy / an area proxy,
and keep the Pareto-efficient designs.

The **area proxy** follows the standard racetrack argument: cell area is
dominated by ports (each port is an access transistor stack on every tape),
so a DBC with `P` ports amortised over `L` words costs roughly
``1 + port_area_factor · P / L`` relative area per bit.  Absolute numbers
are not the point — the *ordering* of designs is, and that only needs the
ratio.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from repro.analysis.checkpoint import CheckpointJournal, run_checkpointed, task_key
from repro.analysis.parallel import resolve_jobs
from repro.core.api import optimize_placement
from repro.dwm.config import DWMConfig, PortPolicy
from repro.dwm.energy import DWMEnergyModel
from repro.errors import OptimizationError
from repro.memory.shm import publish_traces
from repro.memory.spm import ScratchpadMemory
from repro.trace.model import AccessTrace

#: Relative area of one access port vs one storage domain, per tape.
PORT_AREA_FACTOR = 6.0


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated geometry."""

    words_per_dbc: int
    num_ports: int
    policy: str
    num_dbcs: int
    total_shifts: int
    latency_ns: float
    energy_pj: float
    area_per_bit: float

    @property
    def label(self) -> str:
        return f"L={self.words_per_dbc},P={self.num_ports},{self.policy}"

    def objectives(self) -> tuple[float, float, float]:
        """(latency, energy, area) — all minimised."""
        return (self.latency_ns, self.energy_pj, self.area_per_bit)


def area_per_bit(words_per_dbc: int, num_ports: int) -> float:
    """Relative cell area per stored bit (see module docstring)."""
    if words_per_dbc <= 0 or num_ports <= 0:
        raise OptimizationError("geometry parameters must be positive")
    return 1.0 + PORT_AREA_FACTOR * num_ports / words_per_dbc


def _explore_point(task: tuple) -> DesignPoint:
    """Evaluate one geometry (top-level so pool workers can unpickle it).

    The trace arrives as a :class:`~repro.memory.shm.TraceHandle`; see
    :func:`repro.analysis.sweep._sweep_cell`.
    """
    handle, length, port_count, policy, method, energy_model = task
    trace = handle.trace()
    config = DWMConfig.for_items(
        trace.num_items,
        words_per_dbc=length,
        num_ports=port_count,
        port_policy=policy,
    )
    result = optimize_placement(trace, config, method=method)
    sim = ScratchpadMemory(config, result.placement).simulate(trace)
    breakdown = sim.energy(energy_model)
    return DesignPoint(
        words_per_dbc=length,
        num_ports=port_count,
        policy=PortPolicy.parse(policy).value,
        num_dbcs=config.num_dbcs,
        total_shifts=sim.shifts,
        latency_ns=breakdown.latency_ns,
        energy_pj=breakdown.total_energy_pj,
        area_per_bit=area_per_bit(length, port_count),
    )


def _point_key(task: tuple) -> str:
    """Checkpoint-journal content key of one design point (fingerprint-
    keyed, so serial and pooled runs journal identically)."""
    handle, length, port_count, policy, method, energy_model = task
    return task_key(
        "dse-point",
        {
            "trace": handle.fingerprint(),
            "length": length,
            "ports": port_count,
            "policy": str(policy),
            "method": method,
            "energy": repr(energy_model.params),
        },
    )


def explore(
    trace: AccessTrace,
    lengths: Sequence[int] = (16, 32, 64),
    ports: Sequence[int] = (1, 2, 4),
    policies: Sequence[str] = ("lazy",),
    method: str = "heuristic",
    energy_model: DWMEnergyModel | None = None,
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    checkpoint: CheckpointJournal | None = None,
) -> list[DesignPoint]:
    """Evaluate every geometry in the grid with the given placement method.

    ``jobs`` fans design points out over a process pool (``None`` defers to
    ``REPRO_JOBS``); point order is identical for any job count.
    ``timeout``/``retries``/``checkpoint`` behave as in
    :func:`repro.analysis.sweep.sweep`: poisoned points degrade to
    :class:`~repro.analysis.parallel.TaskFailure` slots, and journaled
    points are restored on resume instead of recomputed.
    """
    energy_model = energy_model or DWMEnergyModel()
    effective_jobs = resolve_jobs(jobs)
    with publish_traces([trace], effective_jobs) as (handle,):
        tasks = [
            (handle, length, port_count, policy, method, energy_model)
            for length in lengths
            for port_count in ports
            if port_count <= length
            for policy in policies
        ]
        keys = (
            [_point_key(task) for task in tasks]
            if checkpoint is not None
            else None
        )
        return run_checkpointed(
            _explore_point,
            tasks,
            keys,
            checkpoint=checkpoint,
            encode=asdict,
            decode=lambda payload: DesignPoint(**payload),
            jobs=effective_jobs,
            timeout=timeout,
            retries=retries,
        )


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if objective vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    if len(a) != len(b):
        raise OptimizationError("objective vectors must have equal length")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(points: Iterable[DesignPoint]) -> list[DesignPoint]:
    """The non-dominated subset, in the input order."""
    points = list(points)
    front: list[DesignPoint] = []
    for candidate in points:
        if any(
            dominates(other.objectives(), candidate.objectives())
            for other in points
            if other is not candidate
        ):
            continue
        front.append(candidate)
    return front


def knee_point(front: Sequence[DesignPoint]) -> DesignPoint:
    """Balanced pick from a front: minimal normalised L2 distance to utopia."""
    front = list(front)
    if not front:
        raise OptimizationError("empty Pareto front")
    objectives = [point.objectives() for point in front]
    dimensions = len(objectives[0])
    lows = [min(o[d] for o in objectives) for d in range(dimensions)]
    highs = [max(o[d] for o in objectives) for d in range(dimensions)]

    def distance(o: Sequence[float]) -> float:
        total = 0.0
        for d in range(dimensions):
            span = highs[d] - lows[d]
            normalised = 0.0 if span == 0 else (o[d] - lows[d]) / span
            total += normalised * normalised
        return total

    best_index = min(range(len(front)), key=lambda i: distance(objectives[i]))
    return front[best_index]


def render_front(points: Sequence[DesignPoint], front: Sequence[DesignPoint]) -> str:
    """ASCII table of all points with the Pareto-efficient ones marked."""
    from repro.analysis.report import format_table

    efficient = {id(point) for point in front}
    rows = [
        (
            "*" if id(point) in efficient else "",
            point.label,
            point.num_dbcs,
            point.total_shifts,
            point.latency_ns,
            point.energy_pj,
            point.area_per_bit,
        )
        for point in points
    ]
    return format_table(
        ("", "design", "DBCs", "shifts", "latency (ns)", "energy (pJ)",
         "area/bit"),
        rows,
        title="Design-space exploration (* = Pareto-efficient)",
    )
