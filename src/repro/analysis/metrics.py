"""Metric helpers shared by the experiment harness."""

from __future__ import annotations

import math
from typing import Iterable, Mapping


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the aggregation papers use for normalized results.

    Zero values are clamped to a tiny epsilon (a normalized cost of exactly
    zero would otherwise annihilate the mean); an empty input returns NaN.
    """
    values = list(values)
    if not values:
        return float("nan")
    epsilon = 1e-12
    log_sum = 0.0
    for value in values:
        if value < 0:
            raise ValueError(f"geometric mean of negative value {value}")
        log_sum += math.log(max(value, epsilon))
    return math.exp(log_sum / len(values))


def reduction_percent(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def speedup(baseline: float, improved: float) -> float:
    """``baseline / improved`` with care for zero denominators."""
    if improved == 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / improved


def normalize(values: Mapping[str, float], reference_key: str) -> dict[str, float]:
    """Divide every value by the value at ``reference_key``."""
    reference = values[reference_key]
    if reference == 0:
        return {
            key: (0.0 if value == 0 else float("inf"))
            for key, value in values.items()
        }
    return {key: value / reference for key, value in values.items()}


def summarize_normalized(
    rows: Iterable[Mapping[str, float]], keys: Iterable[str]
) -> dict[str, float]:
    """Geometric mean of each key's column across rows."""
    rows = list(rows)
    return {key: geometric_mean(row[key] for row in rows) for key in keys}
