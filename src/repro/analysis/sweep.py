"""Parameter-sweep driver for the sensitivity experiments (E4, E5).

A sweep runs a set of placement methods over a grid of DWM geometries for a
set of traces, producing flat :class:`SweepRecord` rows that the experiment
harness aggregates into the paper's sensitivity figures.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from repro.analysis.checkpoint import CheckpointJournal, run_checkpointed, task_key
from repro.analysis.parallel import resolve_jobs
from repro.core.api import optimize_placement
from repro.dwm.config import DWMConfig
from repro.memory.shm import publish_traces
from repro.trace.model import AccessTrace


@dataclass(frozen=True)
class SweepRecord:
    """One (trace, geometry, method) measurement."""

    trace: str
    method: str
    words_per_dbc: int
    num_ports: int
    num_dbcs: int
    total_shifts: int
    num_accesses: int
    runtime_seconds: float

    @property
    def shifts_per_access(self) -> float:
        if not self.num_accesses:
            return 0.0
        return self.total_shifts / self.num_accesses


def _sweep_cell(task: tuple) -> SweepRecord:
    """Evaluate one (trace-handle, geometry, method) grid cell.

    Top-level (picklable) so :func:`repro.analysis.parallel.parallel_map`
    can ship cells to pool workers under any start method.  The trace
    arrives as a :class:`~repro.memory.shm.TraceHandle` — the pickle is a
    few dozen bytes; the access arrays live in shared memory (or, in the
    publishing process itself, are the original trace object).
    """
    handle, words_per_dbc, num_ports, method, kwargs = task
    trace = handle.trace()
    config = DWMConfig.for_items(
        trace.num_items,
        words_per_dbc=words_per_dbc,
        num_ports=num_ports,
    )
    result = optimize_placement(trace, config, method=method, **kwargs)
    return SweepRecord(
        trace=trace.name,
        method=method,
        words_per_dbc=words_per_dbc,
        num_ports=num_ports,
        num_dbcs=config.num_dbcs,
        total_shifts=result.total_shifts,
        num_accesses=len(trace),
        runtime_seconds=result.runtime_seconds,
    )


def _cell_key(task: tuple) -> str:
    """Checkpoint-journal content key of one sweep cell.

    Keyed on the trace *fingerprint* (content hash), never the handle, so
    serial and pooled runs — and resumed runs republished under new
    segment names — generate identical journal keys.
    """
    handle, words_per_dbc, num_ports, method, kwargs = task
    return task_key(
        "sweep-cell",
        {
            "trace": handle.fingerprint(),
            "words_per_dbc": words_per_dbc,
            "num_ports": num_ports,
            "method": method,
            "kwargs": kwargs,
        },
    )


def sweep(
    traces: Iterable[AccessTrace],
    methods: Sequence[str] = ("declaration", "heuristic"),
    words_per_dbc_values: Sequence[int] = (64,),
    num_ports_values: Sequence[int] = (1,),
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    checkpoint: CheckpointJournal | None = None,
    **kwargs,
) -> list[SweepRecord]:
    """Run every (trace × geometry × method) combination.

    ``jobs`` fans the grid out over a process pool (``None`` defers to the
    ``REPRO_JOBS`` environment variable; 1 runs serially).  Cells are
    independent, and results always come back in the serial nested-loop
    order, so the record list is identical for any job count.

    ``timeout``/``retries`` switch to the fault-tolerant runner: a cell
    that keeps hanging or crashing yields a
    :class:`~repro.analysis.parallel.TaskFailure` in its slot instead of
    killing the sweep.  ``checkpoint`` journals each completed cell (keyed
    by trace fingerprint + geometry + method) so an interrupted sweep
    resumes without recomputing.
    """
    traces = list(traces)
    effective_jobs = resolve_jobs(jobs)
    from repro.obs import trace_span

    with publish_traces(traces, effective_jobs) as handles:
        tasks = [
            (handle, words_per_dbc, num_ports, method, kwargs)
            for handle in handles
            for words_per_dbc in words_per_dbc_values
            for num_ports in num_ports_values
            for method in methods
        ]
        keys = (
            [_cell_key(task) for task in tasks]
            if checkpoint is not None
            else None
        )
        with trace_span("sweep", cells=len(tasks)):
            return run_checkpointed(
                _sweep_cell,
                tasks,
                keys,
                checkpoint=checkpoint,
                encode=asdict,
                decode=lambda payload: SweepRecord(**payload),
                jobs=effective_jobs,
                timeout=timeout,
                retries=retries,
            )


def pivot(
    records: Iterable[SweepRecord],
    row_key: str,
    column_key: str,
    value: str = "total_shifts",
) -> dict:
    """Pivot sweep records into ``{row: {column: value}}``.

    ``row_key``/``column_key`` name :class:`SweepRecord` attributes; when
    several records collapse into one cell their values are summed (useful
    for aggregating over traces).
    """
    table: dict = {}
    for record in records:
        row = getattr(record, row_key)
        column = getattr(record, column_key)
        cell = table.setdefault(row, {})
        cell[column] = cell.get(column, 0) + getattr(record, value)
    return table


def normalized_by_method(
    records: Iterable[SweepRecord],
    baseline_method: str = "declaration",
) -> dict[tuple, dict[str, float]]:
    """Normalize each (trace, geometry) cell's methods to a baseline.

    Returns ``{(trace, L, P): {method: normalized_shifts}}``.
    """
    cells: dict[tuple, dict[str, int]] = {}
    for record in records:
        key = (record.trace, record.words_per_dbc, record.num_ports)
        cells.setdefault(key, {})[record.method] = record.total_shifts
    normalized: dict[tuple, dict[str, float]] = {}
    for key, methods in cells.items():
        baseline = methods.get(baseline_method)
        if baseline is None:
            continue
        if baseline == 0:
            normalized[key] = {
                method: (0.0 if shifts == 0 else float("inf"))
                for method, shifts in methods.items()
            }
        else:
            normalized[key] = {
                method: shifts / baseline for method, shifts in methods.items()
            }
    return normalized
