"""Checkpoint/resume journal for long-running orchestration.

A sweep, DSE grid or experiment batch killed mid-run (SIGINT, OOM-killed
worker, machine crash) used to lose every completed cell.  This module
provides :class:`CheckpointJournal` — an append-only JSONL file of
completed results keyed by the same content-hash scheme as
:mod:`repro.analysis.cache` — plus :func:`run_checkpointed`, the driver
that restores completed cells, runs the remainder through
:func:`repro.analysis.parallel.resilient_map`, and records each success
the moment it lands.

Journal properties:

* **Atomic appends** — each record is one ``write()`` of a single
  newline-terminated JSON object, flushed immediately.  A kill mid-write
  (or a lost OS buffer on power failure) can tear the *tail* of the file
  — possibly several partially flushed records, not just one line.
  :func:`scan_journal` finds the byte offset after the last fully valid
  line; resume counts the torn records and **truncates the file back to
  that offset** before appending, so a fresh record can never concatenate
  onto torn bytes (which would corrupt both records).
* **Content-keyed** — keys are sha256 hashes over canonical JSON documents
  of the task inputs (trace fingerprint, geometry, method, kwargs, code
  version), so a resumed run only reuses a cell if its inputs are
  byte-for-byte the same experiment.
* **Deterministic resume** — restored results are placed at their original
  task indices, so an interrupted-then-resumed run renders byte-identically
  to an uninterrupted one.

The CLI flushes every registered journal from its ``KeyboardInterrupt``
handler (:func:`flush_active_journals`) before exiting with code 130.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import replace
from pathlib import Path

from repro import __version__
from repro.analysis.cache import _canonical
from repro.chaos import failpoint
from repro.errors import InjectedFaultError
from repro.obs import get_registry

#: Bump when the journal line layout changes.
SCHEMA_VERSION = 1

#: Journals currently open (flushed on CLI interrupt).
_ACTIVE: list["CheckpointJournal"] = []


def task_key(kind: str, document: dict) -> str:
    """Content hash identifying one orchestrated task (hex sha256).

    Same scheme as :func:`repro.analysis.cache.placement_key`: a canonical
    JSON document salted with the schema and package version, so stale
    journals cannot leak results across code changes.
    """
    payload = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "version": __version__,
            "kind": kind,
            "doc": _canonical(document),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def scan_journal(
    path: str | os.PathLike,
) -> tuple[dict[str, object], int, int]:
    """Scan a journal file tolerating a torn multi-record tail.

    Returns ``(entries, good_offset, corrupt_lines)`` where
    ``good_offset`` is the byte offset just after the last fully valid
    (parseable **and** newline-terminated) line.  Corrupt lines *between*
    valid lines are skipped and counted, matching the historical
    behaviour; everything after the last valid line is torn tail that a
    resume must truncate before appending.  A final line that parses but
    lacks its newline is treated as torn too — its trailing bytes may
    still be missing, and appending after it would merge two records.
    """
    entries: dict[str, object] = {}
    good_offset = 0
    corrupt = 0
    offset = 0
    try:
        with open(path, "rb") as handle:
            for raw in handle:
                length = len(raw)
                terminated = raw.endswith(b"\n")
                stripped = raw.strip()
                if stripped:
                    try:
                        record = json.loads(stripped.decode("utf-8"))
                        key = record["key"]
                        payload = record["payload"]
                    except (ValueError, TypeError, KeyError):
                        corrupt += 1
                    else:
                        if terminated:
                            entries[key] = payload
                            good_offset = offset + length
                        else:
                            corrupt += 1
                elif terminated:
                    good_offset = offset + length
                offset += length
    except FileNotFoundError:
        pass
    return entries, good_offset, corrupt


class CheckpointJournal:
    """Append-only JSONL store of completed task payloads.

    ``resume=True`` loads any existing journal at ``path`` before opening
    it for append; ``resume=False`` truncates it (a fresh run must not mix
    with stale state).  ``restored`` counts entries recovered on open,
    ``corrupt_lines`` the unparseable lines skipped, and
    ``truncated_bytes`` the torn tail cut off before reopening for append
    (a kill mid-flush can tear several trailing records, not just one).
    """

    def __init__(self, path: str | os.PathLike, resume: bool = False) -> None:
        self.path = Path(path)
        self._entries: dict[str, object] = {}
        self.corrupt_lines = 0
        self.recorded = 0
        self.truncated_bytes = 0
        if resume:
            self.load()
            self._truncate_torn_tail()
        self.restored = len(self._entries)
        registry = get_registry()
        registry.inc("checkpoint.journals")
        if self.restored:
            registry.inc("checkpoint.restored", self.restored)
        if self.corrupt_lines:
            registry.inc("checkpoint.corrupt_lines", self.corrupt_lines)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(
            self.path, "a" if resume else "w", encoding="utf-8"
        )
        _ACTIVE.append(self)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def load(self) -> int:
        """Read the journal from disk; returns the number of entries."""
        entries, good_offset, corrupt = scan_journal(self.path)
        self._entries.update(entries)
        self.corrupt_lines += corrupt
        self._good_offset = good_offset
        return len(self._entries)

    def _truncate_torn_tail(self) -> None:
        """Cut torn trailing bytes so appends start on a line boundary."""
        good_offset = getattr(self, "_good_offset", 0)
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if good_offset >= size:
            return
        with open(self.path, "r+b") as handle:
            handle.truncate(good_offset)
        self.truncated_bytes = size - good_offset
        get_registry().inc("checkpoint.torn_bytes", self.truncated_bytes)

    def record(self, key: str, payload) -> None:
        """Append one completed result; flushed before returning."""
        line = json.dumps(
            {"key": key, "payload": payload},
            separators=(",", ":"),
            default=str,
        ) + "\n"
        action = failpoint("journal.append")
        if action is not None and action.kind == "truncate":
            # Torn-write simulation: part of the line reaches the file,
            # then a typed error aborts — resume must truncate this tail.
            self._handle.write(line[: action.keep_bytes])
            self._handle.flush()
            raise InjectedFaultError(
                f"chaos torn journal append: kept {action.keep_bytes} of "
                f"{len(line)} bytes"
            )
        self._handle.write(line)
        self._handle.flush()
        self._entries[key] = payload
        self.recorded += 1
        get_registry().inc("checkpoint.recorded")

    def flush(self) -> None:
        """Force buffered records to the OS (and disk, best effort)."""
        if self._handle.closed:
            return
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:
            pass

    def close(self) -> None:
        """Flush and close the journal; safe to call twice."""
        if self in _ACTIVE:
            _ACTIVE.remove(self)
        if not self._handle.closed:
            self.flush()
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: str):
        """Stored payload for ``key``, or ``None``."""
        return self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


def flush_active_journals() -> int:
    """Flush every open journal (CLI interrupt path); returns the count."""
    for journal in list(_ACTIVE):
        journal.flush()
    return len(_ACTIVE)


def run_checkpointed(
    fn,
    tasks,
    keys,
    *,
    checkpoint: CheckpointJournal | None = None,
    encode=None,
    decode=None,
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    backoff_seconds: float | None = None,
):
    """Orchestrate ``tasks`` with optional journaling and fault tolerance.

    When neither a checkpoint nor a timeout nor retries are requested this
    is exactly :func:`repro.analysis.parallel.parallel_map` (the fast
    pool path).  Otherwise tasks whose key already has a journal entry are
    restored via ``decode`` without recomputing; the remainder run through
    :func:`repro.analysis.parallel.resilient_map`, and every success is
    journaled via ``encode`` the moment it completes — so an interrupt
    loses at most the cells still in flight.

    Results (restored or fresh) come back in task order; slots whose task
    exhausted its retry budget hold a
    :class:`repro.analysis.parallel.TaskFailure` re-indexed to the task's
    position in ``tasks``.
    """
    from repro.analysis.parallel import (
        DEFAULT_BACKOFF_SECONDS,
        TaskFailure,
        parallel_map,
        resilient_map,
    )

    tasks = list(tasks)
    if checkpoint is None and timeout is None and retries == 0:
        return parallel_map(fn, tasks, jobs=jobs)
    if backoff_seconds is None:
        backoff_seconds = DEFAULT_BACKOFF_SECONDS
    if keys is None:
        keys = [None] * len(tasks)
    keys = list(keys)
    if len(keys) != len(tasks):
        raise ValueError(
            f"keys/tasks disagree: {len(keys)} keys for {len(tasks)} tasks"
        )
    encode = encode if encode is not None else (lambda value: value)
    decode = decode if decode is not None else (lambda payload: payload)
    results: list = [None] * len(tasks)
    remaining: list[int] = []
    for index, key in enumerate(keys):
        payload = (
            checkpoint.get(key)
            if checkpoint is not None and key is not None
            else None
        )
        if payload is not None:
            results[index] = decode(payload)
        else:
            remaining.append(index)

    def on_result(sub_index: int, value) -> None:
        index = remaining[sub_index]
        if checkpoint is not None and keys[index] is not None:
            checkpoint.record(keys[index], encode(value))

    try:
        fresh = resilient_map(
            fn,
            [tasks[index] for index in remaining],
            jobs,
            timeout=timeout,
            retries=retries,
            backoff_seconds=backoff_seconds,
            on_result=on_result,
        )
    except BaseException:
        # Interrupt (or pool meltdown) mid-batch: everything journaled so
        # far must survive for resume, even when the caller never reaches
        # the CLI's KeyboardInterrupt handler.
        if checkpoint is not None:
            checkpoint.flush()
        raise
    for sub_index, index in enumerate(remaining):
        value = fresh[sub_index]
        if isinstance(value, TaskFailure):
            value = replace(value, index=index)
        results[index] = value
    return results
