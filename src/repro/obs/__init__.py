"""repro.obs — unified observability: metrics, tracing, run manifests.

One dependency-free subsystem every engine reports through:

* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  (counters, gauges, histograms with labels; snapshot/reset/merge;
  thread-safe).
* :mod:`repro.obs.tracing` — hierarchical :func:`trace_span` context
  managers recording wall-time trees for optimizer passes, simulate
  stages, cache lookups and parallel-task lifecycles.
* :mod:`repro.obs.manifest` — :class:`RunManifest`, the canonical JSON
  schema capturing provenance (git SHA, seed, geometry, engine, package
  version) plus metric snapshots; consumed by
  :mod:`repro.analysis.benchref` and ``repro bench compare``.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    collect_manifest,
    detect_git_sha,
    flatten_snapshot,
    json_safe,
    read_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    HistogramSummary,
    MetricsRegistry,
    get_registry,
    metric_key,
    set_registry,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    get_tracer,
    render_spans,
    set_tracer,
    trace_span,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "HistogramSummary",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "Tracer",
    "collect_manifest",
    "detect_git_sha",
    "flatten_snapshot",
    "get_registry",
    "get_tracer",
    "json_safe",
    "metric_key",
    "read_manifest",
    "render_spans",
    "set_registry",
    "set_tracer",
    "trace_span",
    "write_manifest",
]
