"""Hierarchical wall-time tracing: ``trace_span()`` context managers.

The perf-critical paths are nested — an experiment runs a sweep, the sweep
fans cells out over ``parallel_map``, each cell optimizes a placement and
simulates it, and the vectorized simulate splits into resolve and scan
stages.  Flat counters cannot show *where* inside that nesting the time
went; spans can.

Usage::

    from repro.obs import trace_span

    with trace_span("sweep", cells=len(tasks)):
        with trace_span("optimize", method="heuristic"):
            ...

Each completed span records its wall-clock duration and metadata.  Spans
nest per thread (a ``threading.local`` stack); a span that completes with
no parent becomes a *root* and is retained on the :class:`Tracer` (bounded
deque, oldest evicted).  Every span additionally feeds the histogram
``span.<name>.seconds`` in the process metrics registry, so aggregate span
timings travel with metric snapshots even when the tree itself is not
exported.

Tracing defaults to on; set ``REPRO_OBS=0`` to disable span *retention*
(the context managers become cheap pass-throughs that still time into the
histogram).  :func:`get_tracer` / :func:`set_tracer` mirror the registry
accessors.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import get_registry

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "render_spans",
    "set_tracer",
    "trace_span",
]

#: ``REPRO_OBS=0`` disables span-tree retention (histograms still record).
OBS_ENV = "REPRO_OBS"

#: Completed root spans kept per tracer before the oldest are evicted.
MAX_ROOT_SPANS = 256

_FALSY = frozenset(("0", "false", "no", "off"))


class Span:
    """One timed region: name, duration, metadata, child spans."""

    __slots__ = ("name", "seconds", "meta", "children")

    def __init__(self, name: str, meta: dict | None = None) -> None:
        self.name = name
        self.seconds = 0.0
        self.meta = meta or {}
        self.children: list[Span] = []

    def as_dict(self) -> dict:
        """JSON-ready tree rooted at this span."""
        payload: dict = {"name": self.name, "seconds": self.seconds}
        if self.meta:
            payload["meta"] = {key: str(value) for key, value in self.meta.items()}
        if self.children:
            payload["children"] = [child.as_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.seconds:.6f}s, {len(self.children)} children)"


class Tracer:
    """Per-process span collector with a bounded root-span history."""

    def __init__(self, max_roots: int = MAX_ROOT_SPANS) -> None:
        self._roots: deque[Span] = deque(maxlen=max_roots)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.enabled = os.environ.get(OBS_ENV, "").strip().lower() not in _FALSY

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator[Span]:
        """Open one span; duration and tree linkage recorded on exit."""
        span = Span(name, dict(meta) if meta else None)
        stack = self._stack()
        stack.append(span)
        start = time.perf_counter()
        try:
            yield span
        finally:
            span.seconds = time.perf_counter() - start
            stack.pop()
            get_registry().observe(f"span.{name}.seconds", span.seconds)
            if self.enabled:
                if stack:
                    stack[-1].children.append(span)
                else:
                    with self._lock:
                        self._roots.append(span)

    def roots(self) -> tuple[Span, ...]:
        """Completed root spans, oldest first."""
        with self._lock:
            return tuple(self._roots)

    def reset(self) -> None:
        """Drop every retained root span."""
        with self._lock:
            self._roots.clear()

    def as_dicts(self) -> list[dict]:
        """JSON-ready list of retained root-span trees."""
        return [span.as_dict() for span in self.roots()]


def render_spans(spans: tuple[Span, ...] | list[Span], indent: int = 0) -> str:
    """Plain-text tree rendering of span durations (for ``repro obs dump``)."""
    lines: list[str] = []
    for span in spans:
        meta = ""
        if span.meta:
            inner = ", ".join(f"{key}={value}" for key, value in span.meta.items())
            meta = f"  [{inner}]"
        lines.append(f"{'  ' * indent}{span.name}: {span.seconds * 1e3:.3f} ms{meta}")
        if span.children:
            lines.append(render_spans(span.children, indent + 1))
    return "\n".join(lines)


_TRACER = Tracer()
_TRACER_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one."""
    global _TRACER
    with _TRACER_LOCK:
        previous = _TRACER
        _TRACER = tracer
    return previous


@contextmanager
def trace_span(name: str, **meta: object) -> Iterator[Span]:
    """Open a span on the process-wide tracer (the usual entry point)."""
    with get_tracer().span(name, **meta) as span:
        yield span
