"""Process-wide metrics registry: counters, gauges, histograms with labels.

Every performance-critical subsystem used to keep its own ad-hoc counters —
``repro.perf`` timing helpers, ``ScratchpadMemory.simulate`` perf entries in
``details``, ``ResultCache.hits``/``misses``, checkpoint-journal tallies.
This module gives them one dependency-free, thread-safe sink so a run can be
summarised with a single :meth:`MetricsRegistry.snapshot` call (and shipped
inside a :class:`~repro.obs.manifest.RunManifest`).

Model
-----
Three instrument families, all keyed by ``name`` plus optional labels:

* **Counters** (:meth:`MetricsRegistry.inc`) — monotonically increasing
  totals (simulation runs, cache hits, injected faults).
* **Gauges** (:meth:`MetricsRegistry.gauge`) — last-write-wins values
  (worker count of the most recent pool, configured check interval).
* **Histograms** (:meth:`MetricsRegistry.observe`) — streaming summaries
  (count/sum/min/max) of repeated measurements such as span durations.

Labels are keyword arguments; a labelled series is stored under the
canonical key ``name{label=value,...}`` with label names sorted, so the
same logical series always lands in the same slot.

Snapshots are plain JSON-ready dicts.  :meth:`MetricsRegistry.merge` folds
one snapshot into a registry — counters add, gauges overwrite, histograms
combine — which is how spawn-mode worker processes report back to the
parent (each worker snapshots its own registry and the parent merges).

The process-wide default registry is reached through :func:`get_registry`;
:func:`set_registry` swaps it (test isolation, scoped collection).
"""

from __future__ import annotations

import math
import threading
from typing import Mapping

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "get_registry",
    "metric_key",
    "set_registry",
]


def metric_key(name: str, labels: Mapping[str, object] | None = None) -> str:
    """Canonical storage key: ``name`` or ``name{a=1,b=x}`` (labels sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class HistogramSummary:
    """Streaming summary of one histogram series (count/sum/min/max).

    Deliberately bucket-free: the consumers (manifests, bench comparisons)
    need aggregate rates and extrema, not quantiles, and a fixed summary
    merges exactly across processes.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-ready summary; ``min``/``max`` are ``None`` when empty."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
        }

    def merge_dict(self, payload: Mapping[str, object]) -> None:
        """Fold a snapshot entry (another process's summary) into this one."""
        count = int(payload.get("count", 0))  # type: ignore[arg-type]
        if count <= 0:
            return
        self.count += count
        self.total += float(payload.get("sum", 0.0))  # type: ignore[arg-type]
        minimum = payload.get("min")
        maximum = payload.get("max")
        if minimum is not None and float(minimum) < self.minimum:  # type: ignore[arg-type]
            self.minimum = float(minimum)  # type: ignore[arg-type]
        if maximum is not None and float(maximum) > self.maximum:  # type: ignore[arg-type]
            self.maximum = float(maximum)  # type: ignore[arg-type]


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms.

    All mutation goes through one lock; the instruments are dict updates,
    so contention is negligible next to the numpy scans and process pools
    they instrument.  Instrumented call sites bump the registry once per
    *call* (one simulate, one cache lookup), never once per access.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        """Add ``value`` (default 1) to the counter ``name{labels}``."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name{labels}`` to ``value`` (last write wins)."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one observation into the histogram ``name{labels}``."""
        key = metric_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = HistogramSummary()
            histogram.observe(value)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(metric_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: object) -> float | None:
        """Current value of one gauge, or ``None`` when never set."""
        with self._lock:
            return self._gauges.get(metric_key(name, labels))

    def histogram_summary(self, name: str, **labels: object) -> dict | None:
        """Snapshot dict of one histogram, or ``None`` when never observed."""
        with self._lock:
            histogram = self._histograms.get(metric_key(name, labels))
            return histogram.as_dict() if histogram is not None else None

    def snapshot(self) -> dict:
        """Consistent JSON-ready snapshot of every instrument."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: histogram.as_dict()
                    for key, histogram in self._histograms.items()
                },
            }

    def reset(self) -> dict:
        """Clear every instrument; returns the final pre-reset snapshot."""
        with self._lock:
            final = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: histogram.as_dict()
                    for key, histogram in self._histograms.items()
                },
            }
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            return final

    # ------------------------------------------------------------------
    # Cross-process aggregation
    # ------------------------------------------------------------------
    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, gauges overwrite (the merged snapshot is treated as
        newer), histograms combine their summaries.  This is the parent
        side of spawn-mode metric collection: workers cannot share the
        parent's in-memory registry, so they ship snapshots home instead.
        """
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        histograms = snapshot.get("histograms", {})
        with self._lock:
            for key, value in counters.items():  # type: ignore[union-attr]
                self._counters[key] = self._counters.get(key, 0) + value
            for key, value in gauges.items():  # type: ignore[union-attr]
                self._gauges[key] = value
            for key, payload in histograms.items():  # type: ignore[union-attr]
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = HistogramSummary()
                histogram.merge_dict(payload)


_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        previous = _REGISTRY
        _REGISTRY = registry
    return previous
