"""Run manifests: one canonical JSON schema for every measured run.

The repo used to persist three differently-shaped ``results/BENCH_e*.json``
artifacts plus per-run ``details`` dicts, which made cross-run comparison a
bespoke parsing job each time.  A :class:`RunManifest` is the single shape
everything converges on:

* identity — manifest kind (``bench``/``experiment``/``dse``/...), run id,
  schema version;
* provenance — package version, git SHA, Python version, platform, seed;
* configuration — engine name and geometry dict when applicable;
* **metrics** — one flat ``{dotted.name: number|bool}`` mapping (the part
  ``repro bench compare`` diffs);
* **extra** — lossless carry-through for non-numeric payload (lists,
  strings), keyed by the same dotted paths;
* spans — optional exported span trees from :mod:`repro.obs.tracing`.

Schema stability is enforced by a golden-file test
(``tests/test_obs.py``): any change to the serialized layout requires
bumping :data:`MANIFEST_SCHEMA_VERSION` and regenerating the golden.

All values are JSON-safe by construction: :func:`json_safe` replaces
non-finite floats with ``None`` (and the upstream
:class:`repro.perf.ThroughputResult` clamp keeps them from appearing in
the first place).
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer, get_tracer

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "collect_manifest",
    "detect_git_sha",
    "flatten_snapshot",
    "json_safe",
    "read_manifest",
    "write_manifest",
]

#: Bump whenever the serialized manifest layout changes (golden-tested).
MANIFEST_SCHEMA_VERSION = 1

#: Marker distinguishing manifests from arbitrary JSON payloads.
MANIFEST_KIND_TAG = "repro-run-manifest"

#: Environment override for the recorded git SHA (CI sets it explicitly).
GIT_SHA_ENV = "REPRO_GIT_SHA"


def json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None``.

    JSON has no ``Infinity``/``NaN``; a manifest containing one would
    either crash ``json.dump`` (with ``allow_nan=False``) or emit
    non-standard JSON other tools reject.  ``None`` is the explicit
    "unmeasurable" marker.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(entry) for entry in value]
    return value


def detect_git_sha(root: str | os.PathLike | None = None) -> str:
    """Best-effort commit SHA: env override, ``git rev-parse``, ``.git`` files.

    Returns ``"unknown"`` when nothing works — a manifest must never fail
    to build because provenance is unavailable.
    """
    override = os.environ.get(GIT_SHA_ENV, "").strip()
    if override:
        return override
    directory = Path(root) if root is not None else Path.cwd()
    try:
        proc = subprocess.run(
            ["git", "-C", str(directory), "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if proc.returncode == 0:
            sha = proc.stdout.strip()
            if sha:
                return sha
    except (OSError, subprocess.SubprocessError):
        pass
    # Fallback: read .git/HEAD by hand (git binary absent).
    for candidate in (directory, *directory.parents):
        head = candidate / ".git" / "HEAD"
        if not head.is_file():
            continue
        try:
            content = head.read_text(encoding="utf-8").strip()
            if content.startswith("ref:"):
                ref = candidate / ".git" / content.split(None, 1)[1]
                return ref.read_text(encoding="utf-8").strip() or "unknown"
            return content or "unknown"
        except OSError:
            break
    return "unknown"


def flatten_snapshot(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """Lower a :meth:`MetricsRegistry.snapshot` into flat manifest metrics.

    Counters become ``counter.<key>``, gauges ``gauge.<key>``, histogram
    summaries explode into ``histogram.<key>.count``/``.sum``/``.min``/
    ``.max``/``.mean``.
    """
    metrics: dict[str, Any] = {}
    for key, value in snapshot.get("counters", {}).items():
        metrics[f"counter.{key}"] = value
    for key, value in snapshot.get("gauges", {}).items():
        metrics[f"gauge.{key}"] = value
    for key, summary in snapshot.get("histograms", {}).items():
        for stat, value in summary.items():
            if value is not None:
                metrics[f"histogram.{key}.{stat}"] = value
    return metrics


@dataclass
class RunManifest:
    """Canonical description of one measured run (see module docstring)."""

    kind: str
    run_id: str
    schema_version: int = MANIFEST_SCHEMA_VERSION
    package_version: str = ""
    git_sha: str = "unknown"
    python_version: str = ""
    platform: str = ""
    seed: int | None = None
    engine: str | None = None
    geometry: dict | None = None
    created_unix: float | None = None
    metrics: dict[str, Any] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.package_version:
            from repro import __version__

            self.package_version = __version__
        if not self.python_version:
            self.python_version = platform.python_version()
        if not self.platform:
            self.platform = f"{platform.system()}-{platform.machine()}"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict in the canonical (golden-tested) key order."""
        return json_safe(
            {
                "manifest": MANIFEST_KIND_TAG,
                "schema_version": self.schema_version,
                "kind": self.kind,
                "run_id": self.run_id,
                "package_version": self.package_version,
                "git_sha": self.git_sha,
                "python_version": self.python_version,
                "platform": self.platform,
                "seed": self.seed,
                "engine": self.engine,
                "geometry": self.geometry,
                "created_unix": self.created_unix,
                "metrics": dict(sorted(self.metrics.items())),
                "extra": dict(sorted(self.extra.items())),
                "spans": self.spans,
            }
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest; rejects unknown schema versions."""
        if payload.get("manifest") != MANIFEST_KIND_TAG:
            raise ReproError(
                "not a run manifest (missing "
                f"'manifest': {MANIFEST_KIND_TAG!r} tag)"
            )
        version = payload.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ReproError(
                f"unsupported manifest schema version {version!r}; "
                f"this build reads version {MANIFEST_SCHEMA_VERSION}"
            )
        return cls(
            kind=str(payload.get("kind", "unknown")),
            run_id=str(payload.get("run_id", "")),
            schema_version=int(version),
            package_version=str(payload.get("package_version", "")),
            git_sha=str(payload.get("git_sha", "unknown")),
            python_version=str(payload.get("python_version", "")),
            platform=str(payload.get("platform", "")),
            seed=payload.get("seed"),
            engine=payload.get("engine"),
            geometry=payload.get("geometry"),
            created_unix=payload.get("created_unix"),
            metrics=dict(payload.get("metrics", {})),
            extra=dict(payload.get("extra", {})),
            spans=list(payload.get("spans", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"not valid manifest JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ReproError("not a manifest: expected a JSON object")
        return cls.from_dict(payload)


def collect_manifest(
    kind: str,
    run_id: str,
    *,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    seed: int | None = None,
    engine: str | None = None,
    geometry: dict | None = None,
    metrics: Mapping[str, Any] | None = None,
    extra: Mapping[str, Any] | None = None,
    created_unix: float | None = None,
    include_spans: bool = True,
) -> RunManifest:
    """Build a manifest from the live registry/tracer state.

    The registry snapshot is flattened via :func:`flatten_snapshot` and
    merged under any explicitly passed ``metrics`` (explicit wins on key
    collision).
    """
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    collected = flatten_snapshot(registry.snapshot())
    if metrics:
        collected.update(metrics)
    return RunManifest(
        kind=kind,
        run_id=run_id,
        git_sha=detect_git_sha(),
        seed=seed,
        engine=engine,
        geometry=geometry,
        created_unix=created_unix,
        metrics=collected,
        extra=dict(extra) if extra else {},
        spans=tracer.as_dicts() if include_spans else [],
    )


def write_manifest(manifest: RunManifest, path: str | os.PathLike) -> Path:
    """Serialize ``manifest`` to ``path`` (parent dirs created)."""
    from repro.util import atomic_write_text

    target = Path(path)
    atomic_write_text(target, manifest.to_json() + "\n")
    return target


def read_manifest(path: str | os.PathLike) -> RunManifest:
    """Load a manifest file written by :func:`write_manifest`."""
    return RunManifest.from_json(Path(path).read_text(encoding="utf-8"))
