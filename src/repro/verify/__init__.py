"""Differential conformance fuzzing and invariant oracles.

The repo prices the same placement four independent ways (scalar
reference, vectorized batch engine, incremental delta engine, and the
fault-injection cost stream); every experiment table assumes they agree
bit-for-bit.  This package is the standing correctness harness for that
assumption: seeded random cases (:mod:`repro.verify.cases`), invariant
oracles (:mod:`repro.verify.oracles`), ddmin-style minimization
(:mod:`repro.verify.shrink`), and the sweep driver behind the
``repro fuzz`` CLI verb (:mod:`repro.verify.fuzzer`).  See
docs/VERIFICATION.md.
"""

from repro.verify.cases import (
    CASE_METHODS,
    CASE_SCHEMA_VERSION,
    FuzzCase,
    generate_case,
)
from repro.verify.fuzzer import (
    FuzzFinding,
    FuzzReport,
    regression_snippet,
    run_fuzz,
)
from repro.verify.oracles import (
    DEFAULT_BRUTE_FORCE_LIMIT,
    GUARDED_METHODS,
    Violation,
    brute_force_optimum,
    build_placement,
    check_bounds,
    check_cache_equivalence,
    check_case,
    check_engine_agreement,
    check_fault_determinism,
    check_ilp_solver,
    check_method_quality,
    check_round_trip,
    check_streaming_agreement,
)
from repro.verify.shrink import ShrinkStats, shrink_case

__all__ = [
    "CASE_METHODS",
    "CASE_SCHEMA_VERSION",
    "DEFAULT_BRUTE_FORCE_LIMIT",
    "GUARDED_METHODS",
    "FuzzCase",
    "FuzzFinding",
    "FuzzReport",
    "ShrinkStats",
    "Violation",
    "brute_force_optimum",
    "build_placement",
    "check_bounds",
    "check_cache_equivalence",
    "check_case",
    "check_engine_agreement",
    "check_fault_determinism",
    "check_ilp_solver",
    "check_method_quality",
    "check_round_trip",
    "check_streaming_agreement",
    "generate_case",
    "regression_snippet",
    "run_fuzz",
    "shrink_case",
]
