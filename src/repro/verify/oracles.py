"""Invariant oracles: every way the repo prices a placement must agree.

:func:`check_case` runs one :class:`~repro.verify.cases.FuzzCase` through
five oracle families and returns the (hopefully empty) list of
:class:`Violation` records:

* **engine agreement** — scalar reference vs vectorized vs incremental vs
  simulator engines vs the fault-injection cost stream, on totals, per-DBC
  decompositions, and the per-access maximum;
* **round trips** — seeded swap/move/reversal mutation scripts through
  :class:`~repro.core.incremental.CostEvaluator`: probed deltas must match
  applied deltas, running totals must match from-scratch evaluation, and
  undo must restore the exact starting state;
* **bounds** — ``shift_lower_bound ≤ cost`` always, and on tiny instances
  ``lower_bound ≤ brute-force optimum ≤ cost`` with the ``exact`` method
  landing exactly on the optimum (the brute force here enumerates *all*
  injective slot assignments — deliberately sharing no code with
  ``repro.core.exact``);
* **quality** — the cross-paper methods (``shiftsreduce``,
  ``generalized``) keep the paper heuristic's placement in their candidate
  portfolio, so a run that prices *worse* than the heuristic is a solver
  bug, not a modelling choice;
* **ilp solver** — on tiny instances the MinLA solver chain
  (:func:`repro.core.ilp.solve`: CP-SAT when installed, subset DP /
  enumeration otherwise) must report a *certified* optimum equal to the
  independent DP optimum, and its order must price to the cost it claims;
* **cache equivalence** — a cold placement-cache store followed by a warm
  lookup must be a hit and return the identical result;
* **fault determinism** — ``injection_seed`` is stable, ``run_injection``
  is a pure function of it, and fault reports are engine-independent;
* **kernel parity** — the compiled lazy-cost kernels (numba or cc, when
  selected) must match the pure-numpy reference implementations
  bit-for-bit on per-access costs, fused chain walks and merge walks,
  across single-port, two-port and the case's own port geometry;
* **streaming agreement** — the chunked out-of-core engine
  (:mod:`repro.memory.stream_sim`) must match the vectorized engine on
  totals, per-DBC decompositions and the per-access maximum, for
  degenerate and random chunk sizes (1, a seeded random size, and larger
  than the trace), on both the head-carrying sequential path and the
  ChunkState map+merge path.

Each family is guarded: an exception inside a check becomes a
``crash:<family>`` violation instead of aborting the sweep.
"""

from __future__ import annotations

import itertools
import math
import random
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.cache import cache_scope
from repro.core import kernels
from repro.core.api import ALGORITHMS, optimize_placement
from repro.core.cost import evaluate_placement, per_dbc_costs, shift_lower_bound
from repro.core.exact import exhaustive_search_is_exact
from repro.core.fast_eval import evaluate_placement_fast
from repro.core.incremental import (
    CostEvaluator,
    multi_port_access_costs_numpy,
)
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.dwm.faults import FaultModel, injection_seed, run_injection
from repro.memory.batch_sim import per_access_costs
from repro.memory.spm import ScratchpadMemory
from repro.verify.cases import FuzzCase

#: Brute-force optimum oracle budget: skip when the number of injective
#: slot assignments exceeds this.
DEFAULT_BRUTE_FORCE_LIMIT = 2000

#: Item-count gate for running the ``exact`` method inside the oracle.
EXACT_ORACLE_MAX_ITEMS = 6

#: Methods whose candidate portfolio contains the paper heuristic, making
#: ``cost ≤ heuristic cost`` a structural invariant the quality oracle
#: polices.
GUARDED_METHODS = ("shiftsreduce", "generalized")

#: Item-count gate for the MinLA solver-chain oracle (the independent DP
#: reference is O(2^n·n)).
ILP_ORACLE_MAX_ITEMS = 7


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough data to read the disagreement."""

    kind: str
    detail: str
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail, "data": self.data}


def build_placement(case: FuzzCase) -> tuple[PlacementProblem, Placement]:
    """Instantiate the case's problem and run its placement method."""
    problem = case.problem()
    placement = ALGORITHMS[case.method](problem, **case.method_kwargs)
    return problem, placement


def brute_force_optimum(
    problem: PlacementProblem,
    limit: int = DEFAULT_BRUTE_FORCE_LIMIT,
) -> int | None:
    """True optimum over ALL injective slot assignments, or ``None``.

    Independent of ``repro.core.exact`` by design: this is the oracle the
    exact solvers are judged against, so it enumerates raw assignments
    (including non-contiguous, gap-straddling ones) with no search-space
    restriction.  Returns ``None`` when the assignment count exceeds
    ``limit``.
    """
    config = problem.config
    slots = [
        Slot(dbc, offset)
        for dbc in range(config.num_dbcs)
        for offset in range(config.words_per_dbc)
    ]
    items = list(problem.items)
    if math.perm(len(slots), len(items)) > limit:
        return None
    best: int | None = None
    for chosen in itertools.permutations(slots, len(items)):
        placement = Placement(dict(zip(items, chosen)))
        cost = evaluate_placement(problem, placement, validate=False)
        if best is None or cost < best:
            best = cost
    return best


def check_engine_agreement(
    case: FuzzCase,
    problem: PlacementProblem,
    placement: Placement,
) -> list[Violation]:
    """All cost engines must agree bit-for-bit with the scalar reference."""
    violations: list[Violation] = []
    trace, config = problem.trace, problem.config
    reference = evaluate_placement(problem, placement)
    spm = ScratchpadMemory(config, placement)
    scalar = spm.simulate(trace, engine="scalar")
    vectorized = spm.simulate(trace, engine="vectorized")
    dbc_seq, cost_seq = per_access_costs(trace, config, placement)
    totals = {
        "fast_eval": int(evaluate_placement_fast(problem, placement)),
        "incremental": int(CostEvaluator(problem, placement).total),
        "simulator_scalar": int(scalar.shifts),
        "simulator_vectorized": int(vectorized.shifts),
        "fault_cost_stream": int(cost_seq.sum()),
    }
    for engine, total in totals.items():
        if total != reference:
            violations.append(
                Violation(
                    kind="engine_total_mismatch",
                    detail=(
                        f"{engine} total {total} != scalar reference "
                        f"{reference}"
                    ),
                    data={"engine": engine, "total": total, "reference": reference},
                )
            )
    per_dbc_reference = per_dbc_costs(problem, placement)
    views = {
        "simulator_scalar": tuple(int(s) for s in scalar.per_dbc_shifts),
        "simulator_vectorized": tuple(
            int(s) for s in vectorized.per_dbc_shifts
        ),
    }
    stream_per_dbc = [0] * config.num_dbcs
    for dbc, cost in zip(dbc_seq.tolist(), cost_seq.tolist()):
        stream_per_dbc[dbc] += cost
    views["fault_cost_stream"] = tuple(stream_per_dbc)
    for engine, per_dbc in views.items():
        expected = tuple(
            per_dbc_reference.get(dbc, 0) for dbc in range(config.num_dbcs)
        )
        if per_dbc != expected:
            violations.append(
                Violation(
                    kind="engine_per_dbc_mismatch",
                    detail=(
                        f"{engine} per-DBC {list(per_dbc)} != reference "
                        f"{list(expected)}"
                    ),
                    data={
                        "engine": engine,
                        "per_dbc": list(per_dbc),
                        "reference": list(expected),
                    },
                )
            )
    if scalar.max_access_shifts != vectorized.max_access_shifts:
        violations.append(
            Violation(
                kind="engine_max_access_mismatch",
                detail=(
                    f"max access shifts: scalar {scalar.max_access_shifts} "
                    f"!= vectorized {vectorized.max_access_shifts}"
                ),
                data={
                    "scalar": int(scalar.max_access_shifts),
                    "vectorized": int(vectorized.max_access_shifts),
                },
            )
        )
    return violations


def check_round_trip(
    case: FuzzCase,
    problem: PlacementProblem,
    placement: Placement,
    mutation_ops: int = 8,
) -> list[Violation]:
    """Seeded mutation script through CostEvaluator apply/undo."""
    violations: list[Violation] = []
    rng = random.Random(case.seed ^ 0x5EED)
    evaluator = CostEvaluator(problem, placement)
    start_total = evaluator.total
    start_mapping = evaluator.placement().as_dict()
    items = list(problem.items)
    # From-scratch cross-checks are O(trace) each; keep them per-step on
    # small traces, final-state-only on long ones.
    check_every_step = len(problem.trace) <= 200
    applied = 0
    for _step in range(mutation_ops):
        kind = rng.choice(("swap", "move", "reversal"))
        if kind == "swap" and len(items) >= 2:
            left, right = rng.sample(items, 2)
            delta = evaluator.swap_delta(left, right)
            before = evaluator.total
            evaluator.apply_swap(left, right)
        elif kind == "move":
            free = evaluator.free_slots()
            if not free:
                continue
            item = rng.choice(items)
            slot = rng.choice(sorted(free))
            delta = evaluator.move_delta(item, slot)
            before = evaluator.total
            evaluator.apply_move(item, slot)
        elif kind == "reversal":
            used = evaluator.dbcs_used()
            if not used:
                continue
            dbc = rng.choice(sorted(used))
            offsets = sorted(evaluator.dbc_contents(dbc))
            delta = evaluator.reversal_delta(dbc, offsets)
            before = evaluator.total
            evaluator.apply_reversal(dbc, offsets)
        else:
            continue
        applied += 1
        if evaluator.total != before + delta:
            violations.append(
                Violation(
                    kind="delta_apply_mismatch",
                    detail=(
                        f"{kind} probe delta {delta} but applied total moved "
                        f"{evaluator.total - before}"
                    ),
                    data={"op": kind, "delta": delta},
                )
            )
            break
        if check_every_step:
            scratch = evaluate_placement(problem, evaluator.placement())
            if scratch != evaluator.total:
                violations.append(
                    Violation(
                        kind="incremental_total_drift",
                        detail=(
                            f"running total {evaluator.total} != scratch "
                            f"evaluation {scratch} after {kind}"
                        ),
                        data={
                            "op": kind,
                            "running": evaluator.total,
                            "scratch": scratch,
                        },
                    )
                )
                break
    if not violations and not check_every_step:
        scratch = evaluate_placement(problem, evaluator.placement())
        if scratch != evaluator.total:
            violations.append(
                Violation(
                    kind="incremental_total_drift",
                    detail=(
                        f"running total {evaluator.total} != scratch "
                        f"evaluation {scratch} after {applied} ops"
                    ),
                    data={"running": evaluator.total, "scratch": scratch},
                )
            )
    for _ in range(applied):
        evaluator.undo()
    if (
        evaluator.total != start_total
        or evaluator.placement().as_dict() != start_mapping
    ):
        violations.append(
            Violation(
                kind="undo_not_restored",
                detail=(
                    f"after undoing {applied} ops: total {evaluator.total} "
                    f"(expected {start_total}), mapping "
                    f"{'differs' if evaluator.placement().as_dict() != start_mapping else 'matches'}"
                ),
                data={"total": evaluator.total, "expected": start_total},
            )
        )
    return violations


def check_bounds(
    case: FuzzCase,
    problem: PlacementProblem,
    placement: Placement,
    brute_force_limit: int = DEFAULT_BRUTE_FORCE_LIMIT,
) -> list[Violation]:
    """lower bound ≤ optimum ≤ evaluated cost; exact methods hit optimum."""
    violations: list[Violation] = []
    lower = shift_lower_bound(problem)
    cost = evaluate_placement(problem, placement)
    if lower > cost:
        violations.append(
            Violation(
                kind="lower_bound_exceeds_cost",
                detail=f"shift_lower_bound {lower} > evaluated cost {cost}",
                data={"lower_bound": lower, "cost": cost},
            )
        )
    optimum = brute_force_optimum(problem, brute_force_limit)
    if optimum is None:
        return violations
    if lower > optimum:
        violations.append(
            Violation(
                kind="lower_bound_unsound",
                detail=f"shift_lower_bound {lower} > true optimum {optimum}",
                data={"lower_bound": lower, "optimum": optimum},
            )
        )
    if cost < optimum:
        violations.append(
            Violation(
                kind="cost_below_optimum",
                detail=(
                    f"evaluated cost {cost} < brute-force optimum {optimum} "
                    "(reference evaluator disagrees with itself)"
                ),
                data={"cost": cost, "optimum": optimum},
            )
        )
    config = problem.config
    if problem.num_items <= EXACT_ORACLE_MAX_ITEMS and exhaustive_search_is_exact(
        config, problem.num_items
    ):
        exact_cost = evaluate_placement(
            problem, ALGORITHMS["exact"](problem)
        )
        if exact_cost != optimum:
            violations.append(
                Violation(
                    kind="exact_method_suboptimal",
                    detail=(
                        f"exact method cost {exact_cost} != brute-force "
                        f"optimum {optimum}"
                    ),
                    data={"exact": exact_cost, "optimum": optimum},
                )
            )
    return violations


def check_method_quality(
    case: FuzzCase,
    problem: PlacementProblem,
    placement: Placement,
) -> list[Violation]:
    """Guarded methods must never price worse than the paper heuristic.

    ``shiftsreduce`` and ``generalized`` keep the heuristic's placement in
    their candidate set, so any case where they return a more expensive
    placement is a real solver bug (broken candidate evaluation, lost
    candidate, nondeterministic selection) — the "solver returns
    worse-than-heuristic placement" violation class.
    """
    if case.method not in GUARDED_METHODS:
        return []
    from repro.core.heuristic import heuristic_placement

    cost = evaluate_placement(problem, placement, validate=False)
    heuristic_cost = evaluate_placement(
        problem, heuristic_placement(problem), validate=False
    )
    if cost > heuristic_cost:
        return [
            Violation(
                kind="method_worse_than_heuristic",
                detail=(
                    f"{case.method} cost {cost} > heuristic cost "
                    f"{heuristic_cost} despite the heuristic guard candidate"
                ),
                data={
                    "method": case.method,
                    "cost": cost,
                    "heuristic": heuristic_cost,
                },
            )
        ]
    return []


def check_ilp_solver(
    case: FuzzCase,
    problem: PlacementProblem,
) -> list[Violation]:
    """The MinLA solver chain must certify the true optimum on tiny instances.

    Runs :func:`repro.core.ilp.solve` (CP-SAT when the optional ortools
    dependency is installed, subset DP / budget-guarded enumeration
    otherwise) against the independent DP optimum, and re-prices the
    returned order to catch solutions whose claimed cost disagrees with
    their own arrangement.
    """
    if problem.num_items > ILP_ORACLE_MAX_ITEMS:
        return []
    from repro.core.cost import linear_arrangement_cost
    from repro.core.exact import minla_optimal_cost
    from repro.core.ilp import solve

    violations: list[Violation] = []
    items = list(problem.items)
    affinity = problem.affinity
    solution = solve(items, affinity)
    reference = minla_optimal_cost(items, affinity)
    if not solution.certified:
        violations.append(
            Violation(
                kind="ilp_solver_uncertified",
                detail=(
                    f"{solution.backend} backend failed to certify a "
                    f"{len(items)}-item instance"
                ),
                data={"backend": solution.backend, "items": len(items)},
            )
        )
    if solution.cost != reference:
        violations.append(
            Violation(
                kind="ilp_solver_suboptimal",
                detail=(
                    f"{solution.backend} backend cost {solution.cost} != "
                    f"DP optimum {reference}"
                ),
                data={
                    "backend": solution.backend,
                    "cost": solution.cost,
                    "optimum": reference,
                },
            )
        )
    repriced = linear_arrangement_cost(list(solution.order), affinity)
    if repriced != solution.cost:
        violations.append(
            Violation(
                kind="ilp_solution_inconsistent",
                detail=(
                    f"{solution.backend} order re-prices to {repriced}, "
                    f"solver claimed {solution.cost}"
                ),
                data={
                    "backend": solution.backend,
                    "claimed": solution.cost,
                    "repriced": repriced,
                },
            )
        )
    return violations


def check_cache_equivalence(case: FuzzCase) -> list[Violation]:
    """A warm placement-cache hit must replay the cold result exactly."""
    violations: list[Violation] = []
    trace, config = case.trace(), case.config()
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as tmp:
        with cache_scope(enabled=True, root=tmp):
            cold = optimize_placement(
                trace, config, method=case.method, **case.method_kwargs
            )
            warm = optimize_placement(
                trace, config, method=case.method, **case.method_kwargs
            )
    if warm.details.get("cache") != "hit":
        violations.append(
            Violation(
                kind="cache_miss_on_replay",
                detail=(
                    "second optimize_placement call was not served from the "
                    f"placement cache (details: {warm.details.get('cache')!r})"
                ),
                data={"cache": str(warm.details.get("cache"))},
            )
        )
    if (
        cold.total_shifts != warm.total_shifts
        or cold.placement.as_dict() != warm.placement.as_dict()
    ):
        violations.append(
            Violation(
                kind="cache_hit_mismatch",
                detail=(
                    f"cache hit returned {warm.total_shifts} shifts, cold "
                    f"run computed {cold.total_shifts}"
                ),
                data={"cold": cold.total_shifts, "warm": warm.total_shifts},
            )
        )
    return violations


def check_fault_determinism(
    case: FuzzCase,
    problem: PlacementProblem,
    placement: Placement,
) -> list[Violation]:
    """Fault injection is a pure, engine-independent function of its seed."""
    violations: list[Violation] = []
    trace, config = problem.trace, problem.config
    model = FaultModel(
        shift_error_rate=0.02, check_interval=8, seed=case.seed % 997
    )
    seed_a = injection_seed(model, trace, config)
    seed_b = injection_seed(model, trace, config)
    if seed_a != seed_b:
        violations.append(
            Violation(
                kind="injection_seed_unstable",
                detail=f"injection_seed returned {seed_a} then {seed_b}",
                data={"first": seed_a, "second": seed_b},
            )
        )
    dbc_seq, cost_seq = per_access_costs(trace, config, placement)
    report_a = run_injection(dbc_seq, cost_seq, config.num_dbcs, model, seed_a)
    report_b = run_injection(dbc_seq, cost_seq, config.num_dbcs, model, seed_a)
    if report_a != report_b:
        violations.append(
            Violation(
                kind="fault_injection_nondeterministic",
                detail="run_injection differed across two identical runs",
                data={},
            )
        )
    spm = ScratchpadMemory(config, placement)
    scalar = spm.simulate(trace, engine="scalar", fault_model=model)
    vectorized = spm.simulate(trace, engine="vectorized", fault_model=model)
    if scalar.details.get("faults") != vectorized.details.get("faults"):
        violations.append(
            Violation(
                kind="fault_report_engine_mismatch",
                detail="fault reports differ between scalar and vectorized",
                data={
                    "scalar": scalar.details.get("faults"),
                    "vectorized": vectorized.details.get("faults"),
                },
            )
        )
    return violations


#: Access-chain length exercised by the kernel-parity oracle.
KERNEL_PARITY_MAX_ACCESSES = 256


def check_kernel_parity(
    case: FuzzCase,
    problem: PlacementProblem,
    placement: Placement,
) -> list[Violation]:
    """Compiled lazy-cost kernels must match the numpy reference exactly.

    Skipped (vacuously clean) when no compiled backend is selected — the
    numpy fallback *is* the reference.  Exercises a seeded random offset
    chain against single-port, two-port and the case's own port geometry,
    plus the fused chain-walk and merge-walk kernels against a from-scratch
    numpy evaluation of the same (sub)chains.
    """
    backend = kernels.compiled()
    if backend is None:
        return []
    violations: list[Violation] = []
    rng = np.random.default_rng(case.seed ^ 0xC0DE)
    config = problem.config
    length = config.words_per_dbc
    n = int(rng.integers(1, KERNEL_PARITY_MAX_ACCESSES + 1))
    offsets = rng.integers(0, length, size=n, dtype=np.int64)
    port_sets = {(0,), tuple(config.port_offsets)}
    if length >= 2:
        port_sets.add((0, length - 1))
    for ports in sorted(port_sets):
        ports_arr = np.asarray(ports, dtype=np.int64)
        reference = multi_port_access_costs_numpy(offsets, ports_arr)
        compiled_costs = backend.lazy_costs(offsets, ports_arr)
        if not np.array_equal(reference, compiled_costs):
            bad = int(np.argmax(reference != compiled_costs))
            violations.append(
                Violation(
                    kind="kernel_costs_mismatch",
                    detail=(
                        f"{kernels.backend_name()} lazy_costs diverges from "
                        f"numpy at access {bad} (ports {list(ports)}): "
                        f"{int(compiled_costs[bad])} != {int(reference[bad])}"
                    ),
                    data={
                        "backend": kernels.backend_name(),
                        "ports": list(ports),
                        "index": bad,
                    },
                )
            )
            continue
        # Fused chain walk: identity item mapping makes offsets[positions]
        # the chain the kernel should gather and price.
        item_at = np.arange(n, dtype=np.int64)
        keep = rng.random(n) < 0.7
        positions = np.flatnonzero(keep).astype(np.int64)
        chain_ref = (
            int(multi_port_access_costs_numpy(offsets[positions], ports_arr).sum())
            if positions.size
            else 0
        )
        chain_got = backend.lazy_chain_cost(positions, item_at, offsets, ports_arr)
        if chain_got != chain_ref:
            violations.append(
                Violation(
                    kind="kernel_chain_mismatch",
                    detail=(
                        f"{kernels.backend_name()} lazy_chain_cost "
                        f"{chain_got} != numpy reference {chain_ref} "
                        f"(ports {list(ports)}, {positions.size} accesses)"
                    ),
                    data={
                        "backend": kernels.backend_name(),
                        "ports": list(ports),
                        "got": int(chain_got),
                        "reference": chain_ref,
                    },
                )
            )
        # Merge walk: (base \ skip) ∪ add, all ascending and disjoint.
        base = positions
        skip = base[rng.random(base.size) < 0.3] if base.size else base
        others = np.flatnonzero(~keep).astype(np.int64)
        add = others[rng.random(others.size) < 0.5] if others.size else others
        merged = np.union1d(np.setdiff1d(base, skip), add).astype(np.int64)
        merge_ref = (
            int(multi_port_access_costs_numpy(offsets[merged], ports_arr).sum())
            if merged.size
            else 0
        )
        merge_got = backend.lazy_merge_cost(
            base, skip, add, item_at, offsets, ports_arr
        )
        if merge_got != merge_ref:
            violations.append(
                Violation(
                    kind="kernel_merge_mismatch",
                    detail=(
                        f"{kernels.backend_name()} lazy_merge_cost "
                        f"{merge_got} != numpy reference {merge_ref} "
                        f"(ports {list(ports)}, {merged.size} accesses)"
                    ),
                    data={
                        "backend": kernels.backend_name(),
                        "ports": list(ports),
                        "got": int(merge_got),
                        "reference": merge_ref,
                    },
                )
            )
    return violations


def check_streaming_agreement(
    case: FuzzCase,
    problem: PlacementProblem,
    placement: Placement,
) -> list[Violation]:
    """Streaming engine must be bit-identical to the vectorized engine.

    Sweeps chunk sizes covering the degenerate corners — one access per
    chunk, a seeded random interior size, and a single chunk larger than
    the trace — and runs each size through both scan paths: the
    sequential head-carrying fold and the ChunkState map+merge stitch
    (the path the pool workers execute).
    """
    from repro.memory.batch_sim import simulate_vectorized
    from repro.memory.stream_sim import simulate_streaming

    violations: list[Violation] = []
    trace, config = problem.trace, problem.config
    reference = simulate_vectorized(trace, config, placement, validate=False)
    rng = random.Random(case.seed ^ 0x57BEA)
    total = len(trace)
    chunk_sizes = sorted({1, rng.randint(1, max(1, total)), total + 7})
    for chunk_size in chunk_sizes:
        for force_merge in (False, True):
            result = simulate_streaming(
                trace,
                config,
                placement,
                chunk_size=chunk_size,
                validate=False,
                force_merge=force_merge,
            )
            mode = result.details["mode"]
            mismatches = []
            if result.shifts != reference.shifts:
                mismatches.append(
                    f"total {result.shifts} != {reference.shifts}"
                )
            if result.per_dbc_shifts != reference.per_dbc_shifts:
                mismatches.append(
                    f"per-DBC {list(result.per_dbc_shifts)} != "
                    f"{list(reference.per_dbc_shifts)}"
                )
            if result.max_access_shifts != reference.max_access_shifts:
                mismatches.append(
                    f"max-access {result.max_access_shifts} != "
                    f"{reference.max_access_shifts}"
                )
            if (result.reads, result.writes) != (
                reference.reads,
                reference.writes,
            ):
                mismatches.append("read/write counts differ")
            if mismatches:
                violations.append(
                    Violation(
                        kind="streaming_engine_mismatch",
                        detail=(
                            f"streaming ({mode}, chunk_size={chunk_size}) "
                            f"diverges from vectorized: "
                            + "; ".join(mismatches)
                        ),
                        data={
                            "chunk_size": chunk_size,
                            "mode": mode,
                            "shifts": int(result.shifts),
                            "reference": int(reference.shifts),
                        },
                    )
                )
    return violations


def check_case(
    case: FuzzCase,
    brute_force_limit: int = DEFAULT_BRUTE_FORCE_LIMIT,
    mutation_ops: int = 8,
) -> list[Violation]:
    """Run every oracle family on ``case``; return all violations found."""
    violations: list[Violation] = []
    try:
        problem, placement = build_placement(case)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return [
            Violation(
                kind="crash:build",
                detail=f"{type(exc).__name__}: {exc}",
                data={"stage": "build"},
            )
        ]
    try:
        placement.validate(problem.config, problem.items)
    except Exception as exc:  # noqa: BLE001
        return [
            Violation(
                kind="method_invalid_placement",
                detail=f"{case.method} produced an invalid placement: {exc}",
                data={"method": case.method},
            )
        ]
    checks = (
        ("engines", lambda: check_engine_agreement(case, problem, placement)),
        ("round_trip", lambda: check_round_trip(case, problem, placement, mutation_ops)),
        (
            "bounds",
            lambda: check_bounds(case, problem, placement, brute_force_limit),
        ),
        (
            "quality",
            lambda: check_method_quality(case, problem, placement),
        ),
        ("ilp", lambda: check_ilp_solver(case, problem)),
        ("cache", lambda: check_cache_equivalence(case)),
        (
            "faults",
            lambda: check_fault_determinism(case, problem, placement),
        ),
        (
            "kernels",
            lambda: check_kernel_parity(case, problem, placement),
        ),
        (
            "streaming",
            lambda: check_streaming_agreement(case, problem, placement),
        ),
    )
    for name, run in checks:
        try:
            violations.extend(run())
        except Exception as exc:  # noqa: BLE001 - crashes are findings too
            violations.append(
                Violation(
                    kind=f"crash:{name}",
                    detail=f"{type(exc).__name__}: {exc}",
                    data={"stage": name},
                )
            )
    return violations
