"""Shrink a failing fuzz case to a minimal reproduction.

Delta-debugging over the case's degrees of freedom, in decreasing order of
leverage: drop access chunks (classic ddmin with adaptive granularity),
drop or merge whole items, shrink the geometry (fewer DBCs, shorter
tapes, fewer ports), and finally cosmetic canonicalisation (reads-only
kinds, ``v0..vk`` names by first appearance).  Every candidate must keep
the *same violation kind* alive — the ``interesting`` predicate — so the
minimized case reproduces the original bug, not a different one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.verify.cases import FuzzCase

#: Default cap on predicate evaluations per shrink (each runs all oracles).
DEFAULT_MAX_CHECKS = 600


@dataclass
class ShrinkStats:
    """Bookkeeping for one shrink run."""

    checks: int = 0
    accepted: int = 0

    def spent(self, max_checks: int) -> bool:
        return self.checks >= max_checks


def _valid(case: FuzzCase) -> bool:
    """Structural validity: geometry holds the items, ports fit the tape."""
    if not case.accesses:
        return False
    if case.words_per_dbc < 1 or case.num_dbcs < 1:
        return False
    if not case.port_offsets:
        return False
    if any(not 0 <= port < case.words_per_dbc for port in case.port_offsets):
        return False
    if len(set(case.port_offsets)) != len(case.port_offsets):
        return False
    return case.num_items() <= case.num_dbcs * case.words_per_dbc


def _try(
    candidate: FuzzCase,
    interesting: Callable[[FuzzCase], bool],
    stats: ShrinkStats,
) -> bool:
    if not _valid(candidate):
        return False
    stats.checks += 1
    if interesting(candidate):
        stats.accepted += 1
        return True
    return False


def _minimize_accesses(
    case: FuzzCase,
    interesting: Callable[[FuzzCase], bool],
    stats: ShrinkStats,
    max_checks: int,
) -> FuzzCase:
    """ddmin over the access sequence: remove chunks, refine granularity."""
    accesses = list(case.accesses)
    granularity = 2
    while len(accesses) >= 2 and not stats.spent(max_checks):
        chunk = max(1, len(accesses) // granularity)
        removed_any = False
        start = 0
        while start < len(accesses) and not stats.spent(max_checks):
            shorter = accesses[:start] + accesses[start + chunk :]
            if shorter and _try(
                case.with_changes(accesses=tuple(shorter)), interesting, stats
            ):
                accesses = shorter
                removed_any = True
                # Same start now addresses the next chunk — retry in place.
                continue
            start += chunk
        if not removed_any:
            if chunk == 1:
                break
            granularity = min(len(accesses), granularity * 2)
        else:
            granularity = max(2, granularity - 1)
    return case.with_changes(accesses=tuple(accesses))


def _item_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Drop an item entirely, or merge it into its predecessor."""
    order: list[str] = []
    for item, _kind in case.accesses:
        if item not in order:
            order.append(item)
    for victim in order:
        kept = tuple(
            (item, kind) for item, kind in case.accesses if item != victim
        )
        if kept:
            yield case.with_changes(accesses=kept)
    for previous, victim in zip(order, order[1:]):
        merged = tuple(
            (previous if item == victim else item, kind)
            for item, kind in case.accesses
        )
        yield case.with_changes(accesses=merged)


def _geometry_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Fewer DBCs, shorter tapes (ports trimmed to fit), fewer ports."""
    if case.num_dbcs > 1:
        yield case.with_changes(num_dbcs=case.num_dbcs - 1)
    if case.words_per_dbc > 1:
        words = case.words_per_dbc - 1
        fitting = tuple(p for p in case.port_offsets if p < words)
        if fitting:
            yield case.with_changes(words_per_dbc=words, port_offsets=fitting)
        clamped = tuple(sorted({min(p, words - 1) for p in case.port_offsets}))
        if clamped != fitting:
            yield case.with_changes(words_per_dbc=words, port_offsets=clamped)
    if len(case.port_offsets) > 1:
        for drop in range(len(case.port_offsets)):
            remaining = tuple(
                p for i, p in enumerate(case.port_offsets) if i != drop
            )
            yield case.with_changes(port_offsets=remaining)


def _cosmetic_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Reads-only kinds and canonical item names (first-appearance order)."""
    if any(kind != "R" for _item, kind in case.accesses):
        yield case.with_changes(
            accesses=tuple((item, "R") for item, _kind in case.accesses)
        )
    rename: dict[str, str] = {}
    for item, _kind in case.accesses:
        if item not in rename:
            rename[item] = f"v{len(rename)}"
    if any(old != new for old, new in rename.items()):
        yield case.with_changes(
            accesses=tuple(
                (rename[item], kind) for item, kind in case.accesses
            )
        )


def shrink_case(
    case: FuzzCase,
    interesting: Callable[[FuzzCase], bool],
    max_checks: int = DEFAULT_MAX_CHECKS,
    stats: ShrinkStats | None = None,
) -> FuzzCase:
    """Greedily minimize ``case`` while ``interesting`` stays true.

    ``interesting`` must already be true for ``case`` itself; the returned
    case is guaranteed interesting (it is only ever replaced by accepted
    candidates).
    """
    stats = stats if stats is not None else ShrinkStats()
    improved = True
    while improved and not stats.spent(max_checks):
        improved = False
        smaller = _minimize_accesses(case, interesting, stats, max_checks)
        if len(smaller.accesses) < len(case.accesses):
            case = smaller
            improved = True
        for maker in (_item_candidates, _geometry_candidates):
            for candidate in maker(case):
                if stats.spent(max_checks):
                    break
                if _try(candidate, interesting, stats):
                    case = candidate
                    improved = True
                    break
    for candidate in _cosmetic_candidates(case):
        if stats.spent(max_checks):
            break
        if _try(candidate, interesting, stats):
            case = candidate
    return case.with_changes(label=f"{case.label or 'fuzz'}-shrunk")
