"""Randomised conformance cases for the differential fuzzer.

A :class:`FuzzCase` pins everything the oracles need to reproduce a run —
the explicit access sequence (so replay never depends on generator
internals), the DBC geometry, the port policy, and the placement method
under test — and round-trips losslessly through a JSON dict, which is what
the shrinker mutates and the artifact/regression-snippet writers emit.

:func:`generate_case` samples the space the repo's engines must agree on:
every port policy, 1–3 ports, tiny geometries (where the brute-force
optimum oracle is affordable) plus occasional long multi-port traces that
cross the incremental engine's vectorisation threshold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.errors import ReproError
from repro.trace.mixes import interleave
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, uniform_trace, zipf_trace

CASE_SCHEMA_VERSION = 1

#: Placement methods the fuzzer draws from.  ``exact`` is exercised by the
#: tiny-instance optimum oracle instead (it needs a size gate).
CASE_METHODS = (
    "declaration",
    "random",
    "frequency",
    "heuristic",
    "heuristic+ls",
    "grouping_only",
    "ordering_only",
    "spectral",
    "community",
    "annealing",
    "shiftsreduce",
    "generalized",
)


@dataclass(frozen=True)
class FuzzCase:
    """One self-contained conformance case (see module docstring)."""

    accesses: tuple[tuple[str, str], ...]
    words_per_dbc: int
    num_dbcs: int
    port_offsets: tuple[int, ...]
    port_policy: str
    method: str
    seed: int
    label: str = ""
    method_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.accesses:
            raise ReproError("a fuzz case needs at least one access")

    # -- reconstruction -------------------------------------------------
    def trace(self) -> AccessTrace:
        return AccessTrace(
            list(self.accesses), name=self.label or f"fuzz-{self.seed}"
        )

    def config(self) -> DWMConfig:
        return DWMConfig(
            words_per_dbc=self.words_per_dbc,
            num_dbcs=self.num_dbcs,
            port_offsets=tuple(self.port_offsets),
            port_policy=self.port_policy,
        )

    def problem(self) -> PlacementProblem:
        return PlacementProblem(trace=self.trace(), config=self.config())

    def num_items(self) -> int:
        return len({item for item, _kind in self.accesses})

    def describe(self) -> str:
        return (
            f"{len(self.accesses)} accesses / {self.num_items()} items on "
            f"{self.num_dbcs}x{self.words_per_dbc} ports={self.port_offsets} "
            f"{self.port_policy} method={self.method} seed={self.seed}"
        )

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": CASE_SCHEMA_VERSION,
            "accesses": [list(access) for access in self.accesses],
            "words_per_dbc": self.words_per_dbc,
            "num_dbcs": self.num_dbcs,
            "port_offsets": list(self.port_offsets),
            "port_policy": self.port_policy,
            "method": self.method,
            "method_kwargs": dict(self.method_kwargs),
            "seed": self.seed,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        schema = data.get("schema", CASE_SCHEMA_VERSION)
        if schema != CASE_SCHEMA_VERSION:
            raise ReproError(f"unsupported fuzz-case schema {schema!r}")
        return cls(
            accesses=tuple(
                (str(item), str(kind)) for item, kind in data["accesses"]
            ),
            words_per_dbc=int(data["words_per_dbc"]),
            num_dbcs=int(data["num_dbcs"]),
            port_offsets=tuple(int(p) for p in data["port_offsets"]),
            port_policy=str(data["port_policy"]),
            method=str(data["method"]),
            seed=int(data.get("seed", 0)),
            label=str(data.get("label", "")),
            method_kwargs=dict(data.get("method_kwargs", {})),
        )

    def with_changes(self, **changes) -> "FuzzCase":
        return replace(self, **changes)


def _method_kwargs(method: str, seed: int) -> dict:
    """Deterministic per-case kwargs for the stochastic methods."""
    if method == "random":
        return {"seed": seed}
    if method == "annealing":
        # Small evaluation budget: conformance, not solution quality.
        return {"seed": seed, "max_evaluations": 300}
    if method == "heuristic+ls":
        return {"max_evaluations": 500}
    return {}


def _random_trace(rng: random.Random, big: bool) -> AccessTrace:
    num_items = rng.randint(2, 6) if big else rng.randint(2, 10)
    num_accesses = rng.randint(300, 700) if big else rng.randint(6, 120)
    seed = rng.randrange(2**31)
    write_fraction = rng.choice([0.0, 0.25, 0.5])
    kind = rng.choice(("uniform", "zipf", "markov", "mix"))
    if kind == "uniform":
        return uniform_trace(
            num_items, num_accesses, seed=seed, write_fraction=write_fraction
        )
    if kind == "zipf":
        return zipf_trace(
            num_items,
            num_accesses,
            alpha=rng.choice([0.8, 1.2, 1.6]),
            seed=seed,
            write_fraction=write_fraction,
        )
    if kind == "markov":
        return markov_trace(
            num_items,
            num_accesses,
            locality=rng.uniform(0.2, 0.95),
            seed=seed,
            write_fraction=write_fraction,
        )
    half = max(2, num_accesses // 2)
    parts = [
        markov_trace(
            max(2, num_items // 2),
            half,
            locality=rng.uniform(0.4, 0.9),
            seed=seed,
        ),
        zipf_trace(max(2, num_items - num_items // 2), half, seed=seed + 1),
    ]
    return interleave(parts, quantum=rng.choice([1, 2, 4]))


def generate_case(rng: random.Random, index: int = 0) -> FuzzCase:
    """Sample one conformance case from the supported geometry space."""
    # ~6% of cases are long multi-port traces that push the incremental
    # engine past MULTI_PORT_VECTOR_MIN and the automaton kernels.
    big = rng.random() < 0.06
    trace = _random_trace(rng, big)
    realized = trace.num_items
    if big:
        words = rng.randint(8, 16)
        num_dbcs = rng.randint(1, 2)
        num_ports = rng.randint(2, 3)
    else:
        words = rng.randint(1, 10)
        num_dbcs = rng.randint(1, 4)
        num_ports = min(rng.choice([1, 1, 1, 2, 2, 3]), words)
    while num_dbcs * words < realized:
        num_dbcs += 1
    num_ports = min(num_ports, words)
    if rng.random() < 0.5:
        config = DWMConfig.with_uniform_ports(
            words_per_dbc=words,
            num_dbcs=num_dbcs,
            num_ports=num_ports,
            port_policy=rng.choice(("lazy", "eager")),
        )
        ports = config.port_offsets
        policy = config.port_policy.value
    else:
        ports = tuple(sorted(rng.sample(range(words), num_ports)))
        policy = rng.choice(("lazy", "eager"))
    method = rng.choice(CASE_METHODS)
    seed = rng.randrange(2**31)
    return FuzzCase(
        accesses=tuple(
            (access.item, access.kind.value) for access in trace
        ),
        words_per_dbc=words,
        num_dbcs=num_dbcs,
        port_offsets=tuple(ports),
        port_policy=policy,
        method=method,
        seed=seed,
        label=f"fuzz-{index}",
        method_kwargs=_method_kwargs(method, seed),
    )
