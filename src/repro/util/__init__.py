"""Small shared utilities with no dependencies on the rest of the package.

Currently: the one true atomic-write idiom.  Cache shards, run manifests,
benchmark JSON artifacts, fuzzer repro files and packed binary traces all
used to hand-roll some variation of "write a temp file, maybe fsync,
rename" — with different levels of crash safety.  :func:`atomic_write`
is the single implementation they now share:

* the temp file lives in the **same directory** as the target, so the
  final ``os.replace`` is a same-filesystem rename (atomic on POSIX);
* the temp file is **fsynced** before the rename (``fsync=False`` opts
  out for throwaway data), so a crash immediately after the rename cannot
  leave a zero-length or partially written target;
* on any error the temp file is **unlinked** — a failed write leaves
  neither a torn target nor a stray ``*.tmp``.

A reader therefore sees either the complete old content or the complete
new content, never a torn file — which is what lets ``repro fsck`` treat
any torn artifact it *does* find as evidence of external corruption
rather than a normal crash artifact.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

__all__ = ["atomic_write", "atomic_write_bytes", "atomic_write_text"]

#: Suffix of the same-directory temp files (fsck sweeps strays by it).
TMP_SUFFIX = ".tmp"


@contextmanager
def atomic_write(
    path: str | os.PathLike,
    mode: str = "w",
    *,
    encoding: str | None = None,
    fsync: bool = True,
    mkdirs: bool = True,
) -> Iterator[IO]:
    """Yield a handle whose contents atomically replace ``path`` on success.

    ``mode`` is ``"w"`` (text; ``encoding`` defaults to UTF-8) or ``"wb"``.
    The handle is a same-directory temp file; when the ``with`` body exits
    cleanly it is flushed, fsynced (unless ``fsync=False``) and renamed
    over ``path`` via ``os.replace``.  If the body raises — including on
    disk-full, where the *write* fails rather than the rename — the temp
    file is removed and the original ``path`` is untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_write mode must be 'w' or 'wb', got {mode!r}")
    if mode == "w" and encoding is None:
        encoding = "utf-8"
    target = Path(path)
    if mkdirs:
        target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode,
        encoding=encoding,
        dir=target.parent,
        prefix=f".{target.name}.",
        suffix=TMP_SUFFIX,
        delete=False,
    )
    try:
        yield handle
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
        handle.close()
        os.replace(handle.name, target)
    except BaseException:
        try:
            handle.close()
        finally:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
        raise


def atomic_write_text(
    path: str | os.PathLike,
    text: str,
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> None:
    """Atomically replace ``path`` with ``text`` (see :func:`atomic_write`)."""
    with atomic_write(path, "w", encoding=encoding, fsync=fsync) as handle:
        handle.write(text)


def atomic_write_bytes(
    path: str | os.PathLike, data: bytes, *, fsync: bool = True
) -> None:
    """Atomically replace ``path`` with ``data`` (see :func:`atomic_write`)."""
    with atomic_write(path, "wb", fsync=fsync) as handle:
        handle.write(data)
