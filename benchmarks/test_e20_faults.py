"""E20 — Monte-Carlo fault injection across placement methods.

Runs :func:`repro.analysis.experiments.run_e20` — seeded shift-fault
injection over every sweep kernel for the random / declaration / heuristic
placements — and asserts the reproduction targets:

* the pooled Monte-Carlo fault count lands within 3 sigma of the analytic
  ``shifts x p`` expectation for every method (MC/analytic cross-check);
* the shift-minimizing heuristic placement (OURS) exposes no more corrupted
  accesses and pays no more realignment shifts than the random and
  declaration baselines — the secondary reliability benefit of shift
  reduction.

The rendered table goes to ``results/e20.txt`` and the structured numbers
to ``results/BENCH_e20.json``.
"""

import json

from repro.analysis.experiments import run_e20


def test_e20_faults(benchmark, record_artifact, results_dir):
    output = benchmark.pedantic(run_e20, rounds=1, iterations=1)
    record_artifact(output)
    (results_dir / "BENCH_e20.json").write_text(
        json.dumps(output.data, indent=2) + "\n", encoding="utf-8"
    )
    for method, cell in output.data.items():
        # MC fault counts must agree with the analytic model within 3 sigma.
        assert cell["within_3_sigma"], (method, cell)
    ours = output.data["heuristic"]
    for baseline in ("random", "declaration"):
        other = output.data[baseline]
        # Fewer shifts => smaller fault budget => less exposure/overhead.
        assert ours["total_shifts"] < other["total_shifts"]
        assert ours["corrupted_accesses"] <= other["corrupted_accesses"]
        assert ours["realignment_shifts"] <= other["realignment_shifts"]
    assert ours["fault_reduction_percent"] > 0.0
