"""Micro-benchmarks of the library's hot paths (true pytest-benchmark runs).

Unlike the E1–E16 artifact benches (single-shot pedantic runs that print
tables), these measure steady-state performance of the primitives a
downstream user exercises in a loop: the cost evaluators, the simulator, and
the placement heuristic.
"""

import pytest

from repro.core.api import build_problem
from repro.core.baselines import random_placement
from repro.core.cost import evaluate_placement
from repro.core.fast_eval import evaluate_placement_fast
from repro.core.heuristic import heuristic_placement
from repro.dwm.config import DWMConfig
from repro.memory.spm import ScratchpadMemory
from repro.trace.synthetic import markov_trace


@pytest.fixture(scope="module")
def workload():
    trace = markov_trace(64, 20000, locality=0.8, seed=99)
    config = DWMConfig.for_items(trace.num_items, words_per_dbc=32)
    problem = build_problem(trace, config)
    problem.index_sequence  # warm the cached views
    problem.affinity
    placement = random_placement(problem, 0)
    return problem, placement


def test_scalar_evaluator(benchmark, workload):
    problem, placement = workload
    result = benchmark(evaluate_placement, problem, placement, False)
    assert result > 0


def test_vectorised_evaluator(benchmark, workload):
    problem, placement = workload
    scalar = evaluate_placement(problem, placement, validate=False)
    result = benchmark(evaluate_placement_fast, problem, placement, False)
    assert result == scalar


def test_event_simulator(benchmark, workload):
    problem, placement = workload
    spm = ScratchpadMemory(problem.config, placement)
    result = benchmark(spm.simulate, problem.trace)
    assert result.shifts == evaluate_placement(problem, placement, False)


def test_heuristic_placement(benchmark, workload):
    problem, _placement = workload
    placement = benchmark(heuristic_placement, problem)
    placement.validate(problem.config, problem.items)
