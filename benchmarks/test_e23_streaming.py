"""E23 — out-of-core streaming engine: throughput, resident set, stitch.

Benchmarks the chunked streaming engine (:mod:`repro.memory.stream_sim`)
against the in-memory vectorized engine on a 10⁶-access trace:

1. **Throughput** — accesses/second of the sequential streaming scan over
   a packed ``.rtb`` file vs the warm in-memory vectorized engine (its
   resolved arrays already cached — the best case for in-memory).
   Reproduction target: streaming ≥0.8× the in-memory rate; on this
   workload it typically *beats* it, because the chunked scan skips the
   materialised ``Access`` layer entirely.
2. **Peak resident set** — two fresh subprocesses replay the same packed
   trace, one through the streaming engine (bounded windows), one by
   materialising and running the vectorized engine.  Peak-RSS deltas over
   each child's post-import baseline are compared; the streaming delta
   must stay under 25% of the materialised one (``resource.getrusage``).
3. **Parallel chunk scan** — the pool-parallel map+stitch path with 2
   workers; its speedup over sequential streaming is recorded (at 10⁶
   accesses the scan is near memory-bandwidth, so dispatch overhead can
   win — the number is informational) and its results asserted identical.

Structured numbers land in ``results/BENCH_e23.json``; the rendered table
goes to ``results/e23.txt``.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.analysis.experiments import ExperimentOutput
from repro.analysis.report import format_table
from repro.core.api import build_problem
from repro.core.baselines import frequency_placement
from repro.dwm.config import DWMConfig
from repro.memory.batch_sim import simulate_vectorized
from repro.memory.stream_sim import simulate_streaming
from repro.perf import Stopwatch
from repro.trace.binio import open_binary, save_binary
from repro.trace.synthetic import markov_trace

NUM_ITEMS = 256
NUM_ACCESSES = 1_000_000

#: Reproduction targets (ISSUE acceptance): streaming throughput within
#: 20% of in-memory, streaming peak-RSS delta under a quarter of the
#: materialised engine's.
THROUGHPUT_FLOOR = 0.8
RSS_BUDGET = 0.25

PARALLEL_JOBS = 2
RSS_CHUNK_SIZE = 1 << 15

_RSS_CHILD = r"""
import json, resource, sys
mode, trace_path, placement_path, chunk_size = (
    sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
)
from repro.cli import load_placement_json
from repro.memory.batch_sim import simulate_vectorized
from repro.memory.stream_sim import simulate_streaming
from repro.trace.binio import open_binary

placement, config = load_placement_json(placement_path)


def peak_rss_kib():
    try:  # VmHWM honours the clear_refs watermark reset below
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


# The import transient peaks far above the engines' working sets, so the
# post-import high watermark would mask both runs.  Resetting the kernel's
# peak-RSS watermark (clear_refs "5", Linux) makes the delta measure only
# the engine's own footprint.
try:
    with open("/proc/self/clear_refs", "w") as refs:
        refs.write("5")
    watermark_reset = True
except OSError:
    watermark_reset = False
baseline_kib = peak_rss_kib()
stream = open_binary(trace_path)
if mode == "stream":
    result = simulate_streaming(
        stream, config, placement, chunk_size=chunk_size
    )
else:
    trace = stream.to_trace()
    result = simulate_vectorized(trace, config, placement)
peak_kib = peak_rss_kib()
print(json.dumps({
    "delta_bytes": (peak_kib - baseline_kib) * 1024,
    "watermark_reset": watermark_reset,
    "shifts": result.shifts,
}))
"""


def _build_instance():
    trace = markov_trace(
        NUM_ITEMS, NUM_ACCESSES, locality=0.85, seed=23, write_fraction=0.2
    )
    config = DWMConfig.for_items(
        NUM_ITEMS, words_per_dbc=32, num_ports=2, port_policy="lazy"
    )
    placement = frequency_placement(build_problem(trace, config))
    return trace, config, placement


def _placement_payload(placement, config):
    return {
        "config": {
            "words_per_dbc": config.words_per_dbc,
            "num_dbcs": config.num_dbcs,
            "port_offsets": list(config.port_offsets),
            "port_policy": config.port_policy.value,
        },
        "placement": {
            item: {"dbc": slot.dbc, "offset": slot.offset}
            for item, slot in placement.items()
        },
    }


def _measure_rss(trace_path: Path, placement_path: Path) -> dict:
    """Peak-RSS delta of each engine in a fresh interpreter."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = {}
    for mode in ("stream", "materialize"):
        proc = subprocess.run(
            [
                sys.executable, "-c", _RSS_CHILD,
                mode, str(trace_path), str(placement_path),
                str(RSS_CHUNK_SIZE),
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        out[mode] = json.loads(proc.stdout)
    return out


def run_e23() -> ExperimentOutput:
    trace, config, placement = _build_instance()
    with tempfile.TemporaryDirectory(prefix="e23-") as tmp:
        trace_path = Path(tmp) / "e23.rtb"
        with Stopwatch() as pack_watch:
            save_binary(trace, trace_path)
        file_bytes = trace_path.stat().st_size
        stream = open_binary(trace_path)

        # Warm the in-memory engine (resolve + any kernel JIT), then time.
        inmem = simulate_vectorized(trace, config, placement)
        with Stopwatch() as inmem_watch:
            inmem = simulate_vectorized(trace, config, placement)
        simulate_streaming(stream, config, placement)  # warm page cache
        with Stopwatch() as stream_watch:
            streamed = simulate_streaming(stream, config, placement)
        with Stopwatch() as parallel_watch:
            parallel = simulate_streaming(
                stream, config, placement, jobs=PARALLEL_JOBS
            )
        from repro.analysis import pool as pool_mod

        pool_mod.shutdown_pools()

        placement_path = Path(tmp) / "placement.json"
        placement_path.write_text(
            json.dumps(_placement_payload(placement, config)),
            encoding="utf-8",
        )
        rss = _measure_rss(trace_path, placement_path)

    inmem_rate = NUM_ACCESSES / max(inmem_watch.seconds, 1e-9)
    stream_rate = NUM_ACCESSES / max(stream_watch.seconds, 1e-9)
    parallel_rate = NUM_ACCESSES / max(parallel_watch.seconds, 1e-9)
    stream_delta = rss["stream"]["delta_bytes"]
    materialize_delta = rss["materialize"]["delta_bytes"]
    rss_ratio = stream_delta / max(materialize_delta, 1)
    results_identical = (
        streamed.shifts == inmem.shifts == parallel.shifts
        == rss["stream"]["shifts"] == rss["materialize"]["shifts"]
        and streamed.per_dbc_shifts == inmem.per_dbc_shifts
        and streamed.max_access_shifts == inmem.max_access_shifts
    )

    table_rows = [
        (
            "throughput (accesses/s)",
            f"{inmem_rate:,.0f}",
            f"{stream_rate:,.0f}",
            f"{stream_rate / inmem_rate:.2f}x",
        ),
        (
            f"parallel scan ({PARALLEL_JOBS} workers)",
            f"{stream_rate:,.0f}",
            f"{parallel_rate:,.0f}",
            f"{parallel_rate / stream_rate:.2f}x",
        ),
        (
            "peak RSS delta (fresh process)",
            f"{materialize_delta / 2**20:.1f} MiB",
            f"{stream_delta / 2**20:.1f} MiB",
            f"{rss_ratio:.2f}x",
        ),
        (
            "pack + stitch",
            f"{pack_watch.seconds:.2f}s pack",
            f"{streamed.details['stitch_seconds'] * 1e3:.1f}ms stitch",
            "-",
        ),
    ]
    rendered = format_table(
        ("measurement", "in-memory / sequential", "streaming", "ratio"),
        table_rows,
        title=(
            f"Out-of-core streaming engine (E23, {NUM_ACCESSES:,} accesses, "
            f"{file_bytes / 2**20:.1f} MiB packed, {os.cpu_count()} CPU)"
        ),
    )
    data = {
        "num_items": NUM_ITEMS,
        "num_accesses": NUM_ACCESSES,
        "cpu_count": os.cpu_count(),
        "packed_file_bytes": file_bytes,
        "pack_seconds": pack_watch.seconds,
        "scan": {
            "inmem_accesses_per_sec": inmem_rate,
            "stream_accesses_per_sec": stream_rate,
            "stream_vs_inmem_throughput": stream_rate / inmem_rate,
            "num_chunks": streamed.details["num_chunks"],
            "stitch_seconds": streamed.details["stitch_seconds"],
        },
        "parallel": {
            "jobs": PARALLEL_JOBS,
            "parallel_accesses_per_sec": parallel_rate,
            "parallel_vs_sequential_speedup": parallel_rate / stream_rate,
        },
        "rss": {
            "stream_delta_bytes": stream_delta,
            "materialize_delta_bytes": materialize_delta,
            "stream_rss_ratio": rss_ratio,
            "watermark_reset": bool(rss["stream"]["watermark_reset"]),
            "rss_within_budget": bool(rss_ratio < RSS_BUDGET),
        },
        "results_identical": bool(results_identical),
    }
    return ExperimentOutput(
        "e23", "Out-of-core streaming engine benchmark", data, rendered
    )


def test_e23_streaming(benchmark, record_artifact, results_dir):
    output = benchmark.pedantic(run_e23, rounds=1, iterations=1)
    record_artifact(output)
    (results_dir / "BENCH_e23.json").write_text(
        json.dumps(output.data, indent=2) + "\n", encoding="utf-8"
    )
    assert output.data["results_identical"]
    scan = output.data["scan"]
    assert scan["stream_vs_inmem_throughput"] >= THROUGHPUT_FLOOR
    rss = output.data["rss"]
    if rss["watermark_reset"]:
        # Without the Linux watermark reset the deltas are masked by the
        # import transient and the budget cannot be judged.
        assert rss["rss_within_budget"], rss
