"""E5 — sensitivity of the shift reduction to the number of access ports.

More ports shrink both the baseline's absolute shift count and the
heuristic's relative gain (a port is never far away) — the crossover shape
multi-port racetrack papers report.
"""

from repro.analysis.experiments import run_e5


def test_e5_ports(benchmark, record_artifact):
    output = benchmark.pedantic(run_e5, rounds=1, iterations=1)
    record_artifact(output)
    by_ports = output.data["by_ports"]
    assert set(by_ports) == {1, 2, 4}
    # Baselines get cheaper with more ports.
    assert (
        by_ports[1]["baseline_total_shifts"]
        > by_ports[2]["baseline_total_shifts"]
        > by_ports[4]["baseline_total_shifts"]
    )
    # Relative gains shrink (weakly) as ports are added.
    assert by_ports[4]["normalized_heuristic"] >= (
        by_ports[1]["normalized_heuristic"] - 0.05
    )
