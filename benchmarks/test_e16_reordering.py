"""E16 (extension) — shift-aware access reordering on top of placement.

A windowed scheduler that preserves per-item program order lets the head
sweep instead of ping-pong; stacked on the placement heuristic it removes a
further 30-55% of the remaining shifts at window 16.
"""

from repro.analysis.experiments import run_e16


def test_e16_reordering(benchmark, record_artifact):
    output = benchmark.pedantic(run_e16, rounds=1, iterations=1)
    record_artifact(output)
    for name, row in output.data.items():
        # Reordering never hurts (the scheduler falls back to program order).
        assert row["w4_shifts"] <= row["original_shifts"], name
        assert row["w16_shifts"] <= row["original_shifts"], name
    # The larger window must help substantially on at least half the kernels.
    strong = sum(
        1 for row in output.data.values() if row["w16_reduction"] >= 20.0
    )
    assert strong >= len(output.data) // 2
