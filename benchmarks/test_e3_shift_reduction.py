"""E3 (main result) — normalized shift counts across all benchmarks.

The headline figure: the placement heuristic against random, declaration
(first-touch), frequency (hot-near-port), and spectral placements, shift
counts normalized to declaration order.  Reproduction target: the heuristic
wins on every benchmark with a large geometric-mean reduction.
"""

from repro.analysis.experiments import run_e3


def test_e3_shift_reduction(benchmark, record_artifact):
    output = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    record_artifact(output)
    geomean = output.data["geomean"]
    # Who wins: the heuristic, on every benchmark.
    for name, row in output.data.items():
        if name != "geomean":
            assert row["heuristic"] <= 1.0 + 1e-9, name
    # By roughly what factor: >= 30% average shift reduction.
    assert geomean["heuristic"] < 0.7
    # And it beats every comparison point on average.
    for method in ("random", "frequency", "spectral"):
        assert geomean["heuristic"] <= geomean[method]
