"""E10 — ablation: grouping vs ordering vs combined vs +local-search.

Isolates the contribution of each heuristic phase on the sweep kernels.
Reproduction target: each phase helps on its own, the combination is at
least as good as either, and local search adds a final improvement.
"""

from repro.analysis.experiments import run_e10


def test_e10_ablation(benchmark, record_artifact):
    output = benchmark.pedantic(run_e10, rounds=1, iterations=1)
    record_artifact(output)
    geomean = output.data["geomean"]
    assert geomean["grouping_only"] < 1.0
    assert geomean["ordering_only"] < 1.0
    assert geomean["heuristic"] <= geomean["grouping_only"] + 1e-9
    assert geomean["heuristic"] <= geomean["ordering_only"] + 1e-9
    assert geomean["heuristic+ls"] <= geomean["heuristic"] + 1e-9
