"""E1 (Table 1) — benchmark characteristics table.

Regenerates the per-kernel rows (items, accesses, reads/writes, reuse
distance, locality) the paper's benchmark table reports.
"""

from repro.analysis.experiments import run_e1


def test_e1_benchmark_table(benchmark, record_artifact):
    output = benchmark.pedantic(run_e1, rounds=1, iterations=1)
    record_artifact(output)
    assert len(output.data) == 17
    for name, row in output.data.items():
        assert row["accesses"] > 0, name
        assert row["items"] > 0, name
