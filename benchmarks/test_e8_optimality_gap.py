"""E8 — heuristic vs exact optimum on small single-DBC instances.

The paper solves small instances to optimality (ILP); here the exact subset
DP + anchor sweep plays that role.  Reproduction target: the heuristic sits
within a small percentage of OPT, and local-search refinement closes most of
the residual gap.
"""

from repro.analysis.experiments import run_e8


def test_e8_optimality_gap(benchmark, record_artifact):
    output = benchmark.pedantic(run_e8, rounds=1, iterations=1)
    record_artifact(output)
    for name, row in output.data.items():
        assert row["heuristic"] >= row["exact"], name
        assert row["heuristic+ls"] >= row["exact"], name
    gaps = [row["gap_refined_percent"] for row in output.data.values()]
    assert sum(gaps) / len(gaps) < 15.0
