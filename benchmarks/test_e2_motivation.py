"""E2 (motivation figure) — shift share of DWM cost under naive placement.

The paper's motivation: with a shift-oblivious (declaration-order) placement
most of a DWM scratchpad's latency and a large share of its energy go to
shift operations — which is exactly the headroom data placement recovers.
"""

from repro.analysis.experiments import run_e2


def test_e2_motivation(benchmark, record_artifact):
    output = benchmark.pedantic(run_e2, rounds=1, iterations=1)
    record_artifact(output)
    shares = [row["shift_latency_share"] for row in output.data.values()]
    # Shifting dominates latency on at least half of the kernels.
    assert sum(1 for share in shares if share > 0.4) >= len(shares) // 2
