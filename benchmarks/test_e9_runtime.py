"""E9 — placement-algorithm runtime scaling.

Times each algorithm over growing synthetic instances.  This is the one
experiment where wall-clock is the artifact itself, so pytest-benchmark
measures the heuristic directly in addition to the printed scaling table.
"""

from repro.analysis.experiments import run_e9
from repro.core.api import optimize_placement
from repro.dwm.config import DWMConfig
from repro.trace.synthetic import markov_trace


def test_e9_runtime_table(benchmark, record_artifact):
    output = benchmark.pedantic(run_e9, rounds=1, iterations=1)
    record_artifact(output)
    sizes = sorted(output.data["by_size"])
    # The heuristic's runtime grows with instance size but stays sub-second
    # at the largest sweep point (polynomial-time claim).
    largest = output.data["by_size"][sizes[-1]]
    assert largest["heuristic"] < 1.0


def test_e9_heuristic_runtime_microbenchmark(benchmark):
    trace = markov_trace(64, 64 * 30, locality=0.8, seed=64)
    config = DWMConfig.for_items(64, words_per_dbc=32)

    def run():
        return optimize_placement(trace, config, method="heuristic")

    result = benchmark(run)
    assert result.total_shifts > 0
