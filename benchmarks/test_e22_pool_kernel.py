"""E22 — compiled kernel throughput + persistent-pool dispatch overhead.

Microbenchmark of the two native-speed hot paths introduced by the
worker-pool/kernel rework:

1. **Compiled lazy kernel** — 2-port lazy ``swap_delta`` probes per second
   through :class:`repro.core.incremental.CostEvaluator` with the selected
   compiled backend (numba or cc) vs the pure-numpy automaton forced via
   ``REPRO_KERNEL=numpy``.  Reproduction target: ≥3,510 evals/s on the
   10⁵-access instance (≥10× the ~350/s pre-kernel baseline), asserted
   whenever a compiled backend is available.  Every probed delta is checked
   against the from-scratch reference evaluator before timing.
2. **Pool dispatch** — per-task round-trip cost of a warm persistent
   :class:`repro.analysis.pool.WorkerPool` vs the old fork-per-task model
   (a fresh process spawned, run and joined per task).  The pool is driven
   directly so the measurement works on any host regardless of the
   ``resolve_jobs`` CPU cap.
3. **Shared-memory traces** — publish + worker-side resolve round-trip of
   a 10⁵-access trace, fingerprint-verified, with a no-leaked-segments
   check after release.

Structured numbers land in ``results/BENCH_e22.json``; the rendered table
goes to ``results/e22.txt``.
"""

import json
import os
import random

from repro.analysis import pool as pool_mod
from repro.analysis.experiments import ExperimentOutput
from repro.analysis.report import format_table
from repro.core import kernels
from repro.core.api import build_problem
from repro.core.baselines import random_placement
from repro.core.cost import evaluate_placement
from repro.core.incremental import CostEvaluator
from repro.dwm.config import DWMConfig
from repro.memory import shm
from repro.perf import Stopwatch, measure_throughput, speedup
from repro.trace.synthetic import markov_trace

NUM_ITEMS = 128
NUM_ACCESSES = 100_000

#: Reproduction target for 2-port lazy deltas with a compiled backend.
KERNEL_EVALS_PER_SEC_TARGET = 3_510.0

POOL_SIZE = 2
POOL_TASKS = 64
SPAWN_TASKS = 8


def _noop_task(value):
    return value


def _handle_fingerprint(handle):
    return handle.fingerprint()


def _build_instance():
    trace = markov_trace(
        NUM_ITEMS, NUM_ACCESSES, locality=0.85, seed=22, write_fraction=0.2
    )
    config = DWMConfig.for_items(
        NUM_ITEMS, words_per_dbc=32, num_ports=2, port_policy="lazy"
    )
    problem = build_problem(trace, config)
    placement = random_placement(problem, 0)
    return trace, problem, placement


def _measure_evaluator(problem, placement, min_seconds):
    """2p-lazy swap_delta throughput with the currently selected backend."""
    evaluator = CostEvaluator(problem, placement)
    items = list(problem.items)

    check_rng = random.Random(7)
    exact = True
    for _ in range(10):
        item_a, item_b = check_rng.sample(items, 2)
        delta = evaluator.swap_delta(item_a, item_b)
        reference = evaluate_placement(
            problem, placement.with_swapped(item_a, item_b), validate=False
        )
        exact = exact and (delta == reference - evaluator.total)

    probe_rng = random.Random(42)

    def probe():
        item_a, item_b = probe_rng.sample(items, 2)
        evaluator.swap_delta(item_a, item_b)

    probe()  # warm caches before timing
    return measure_throughput(probe, min_seconds=min_seconds), exact


def _measure_kernel(problem, placement, min_seconds):
    selected, exact = _measure_evaluator(problem, placement, min_seconds)
    backend = kernels.backend_name()

    # Force the numpy fallback for the in-process baseline, then restore.
    previous = os.environ.get(kernels.KERNEL_ENV)
    os.environ[kernels.KERNEL_ENV] = "numpy"
    kernels.reset_backend()
    try:
        numpy_result, numpy_exact = _measure_evaluator(
            problem, placement, min_seconds
        )
    finally:
        if previous is None:
            os.environ.pop(kernels.KERNEL_ENV, None)
        else:
            os.environ[kernels.KERNEL_ENV] = previous
        kernels.reset_backend()
    return {
        "backend": backend,
        "compiled": kernels.compiled() is not None,
        "kernel_evals_per_sec": selected.ops_per_second,
        "numpy_evals_per_sec": numpy_result.ops_per_second,
        "kernel_vs_numpy_speedup": speedup(selected, numpy_result),
        "deltas_exact": exact and numpy_exact,
    }


def _measure_pool():
    """Warm persistent-pool dispatch vs the old process-per-task model."""
    import multiprocessing

    pool_mod.shutdown_pools()
    pool = pool_mod.get_pool(POOL_SIZE)
    tasks = list(range(POOL_TASKS))
    pool.run(_noop_task, tasks, propagate=True)  # warm the workers
    with Stopwatch() as pool_watch:
        results = pool.run(_noop_task, tasks, propagate=True)
    dispatch_ok = results == tasks
    pool_per_task = pool_watch.seconds / POOL_TASKS

    ctx = multiprocessing.get_context()
    with Stopwatch() as spawn_watch:
        for value in range(SPAWN_TASKS):
            proc = ctx.Process(target=_noop_task, args=(value,))
            proc.start()
            proc.join()
    spawn_per_task = spawn_watch.seconds / SPAWN_TASKS
    return {
        "pool_size": POOL_SIZE,
        "pool_tasks": POOL_TASKS,
        "pool_per_task_seconds": pool_per_task,
        "spawn_per_task_seconds": spawn_per_task,
        "dispatch_speedup": spawn_per_task / max(pool_per_task, 1e-9),
        "results_identical": dispatch_ok,
    }


def _measure_shm(trace):
    """Publish + worker-side resolve round-trip of the benchmark trace."""
    pool = pool_mod.get_pool(POOL_SIZE)
    expected = trace.fingerprint()
    with Stopwatch() as publish_watch:
        handle = shm.publish(trace)
    try:
        with Stopwatch() as resolve_watch:
            results = pool.run(
                _handle_fingerprint, [handle, handle], propagate=True
            )
        roundtrip_ok = results == [expected, expected]
    finally:
        shm.release(handle)
    return {
        "num_accesses": len(trace),
        "publish_seconds": publish_watch.seconds,
        "worker_resolve_seconds": resolve_watch.seconds,
        "roundtrip_identical": roundtrip_ok,
        "segments_leaked": len(shm.active_segments()),
    }


def run_e22(min_seconds: float = 0.3) -> ExperimentOutput:
    trace, problem, placement = _build_instance()
    kernel = _measure_kernel(problem, placement, min_seconds)
    pool = _measure_pool()
    shared = _measure_shm(trace)
    pool_mod.shutdown_pools()

    table_rows = [
        (
            f"2p-lazy deltas ({kernel['backend']})",
            f"{kernel['numpy_evals_per_sec']:,.0f}/s",
            f"{kernel['kernel_evals_per_sec']:,.0f}/s",
            f"{kernel['kernel_vs_numpy_speedup']:.1f}x",
            "yes" if kernel["deltas_exact"] else "NO",
        ),
        (
            f"dispatch ({POOL_TASKS} tasks, {POOL_SIZE} workers)",
            f"{pool['spawn_per_task_seconds'] * 1e3:.1f}ms/task",
            f"{pool['pool_per_task_seconds'] * 1e3:.2f}ms/task",
            f"{pool['dispatch_speedup']:.0f}x",
            "yes" if pool["results_identical"] else "NO",
        ),
        (
            f"shm round-trip ({len(trace):,} accesses)",
            f"{shared['publish_seconds'] * 1e3:.1f}ms publish",
            f"{shared['worker_resolve_seconds'] * 1e3:.1f}ms resolve",
            "-",
            "yes" if shared["roundtrip_identical"] else "NO",
        ),
    ]
    rendered = format_table(
        ("measurement", "baseline", "optimized", "speedup", "identical"),
        table_rows,
        title=(
            f"Compiled kernel / pool dispatch / shm microbench "
            f"(E22, backend={kernel['backend']}, {os.cpu_count()} CPU)"
        ),
    )
    data = {
        "num_items": NUM_ITEMS,
        "num_accesses": NUM_ACCESSES,
        "cpu_count": os.cpu_count(),
        "kernel": kernel,
        "pool": pool,
        "shm": shared,
    }
    return ExperimentOutput(
        "e22", "Kernel + pool dispatch microbenchmark", data, rendered
    )


def test_e22_pool_kernel(benchmark, record_artifact, results_dir):
    output = benchmark.pedantic(run_e22, rounds=1, iterations=1)
    record_artifact(output)
    (results_dir / "BENCH_e22.json").write_text(
        json.dumps(output.data, indent=2) + "\n", encoding="utf-8"
    )
    kernel = output.data["kernel"]
    assert kernel["deltas_exact"]
    if kernel["compiled"]:
        # Reproduction target: ≥10× the ~350/s pre-kernel 2p-lazy rate.
        assert kernel["kernel_evals_per_sec"] >= KERNEL_EVALS_PER_SEC_TARGET
        assert kernel["kernel_vs_numpy_speedup"] >= 2.0
    pool = output.data["pool"]
    assert pool["results_identical"]
    # A warm dispatch must beat spawning a process per task comfortably.
    assert pool["dispatch_speedup"] >= 5.0
    shared = output.data["shm"]
    assert shared["roundtrip_identical"]
    assert shared["segments_leaked"] == 0
