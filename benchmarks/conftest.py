"""Shared helpers for the benchmark harness.

Each benchmark regenerates one evaluation artifact (DESIGN.md §5).  The
rendered table/figure is printed (visible with ``pytest -s``) and also
written to ``results/<experiment>.txt`` so ``bench_output.txt`` runs leave
the artifacts on disk regardless of capture settings.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(results_dir):
    """Persist an experiment's rendered output and echo it to stdout."""

    def _record(output) -> None:
        from repro.util import atomic_write_text

        path = results_dir / f"{output.experiment_id}.txt"
        atomic_write_text(path, output.rendered + "\n")
        print("\n" + output.rendered)

    return _record
