"""E11 (extension) — controller shift/access overlap across DBCs.

Compares the serialised latency model against an overlapped controller with
per-DBC shift drivers, for an in-order (blocking-load) core and a decoupled
(non-blocking-load) core.
"""

from repro.analysis.experiments import run_e11


def test_e11_overlap(benchmark, record_artifact):
    output = benchmark.pedantic(run_e11, rounds=1, iterations=1)
    record_artifact(output)
    geomean = output.data["geomean"]
    # Overlap never hurts, and decoupled cores benefit more.
    assert geomean["speedup_blocking"] >= 1.0
    assert geomean["speedup_decoupled"] >= geomean["speedup_blocking"]
    for name, row in output.data.items():
        if name == "geomean":
            continue
        assert row["overlap_blocking"] <= row["serial_cycles"], name
        assert row["overlap_decoupled"] <= row["overlap_blocking"], name
