"""E18 — incremental delta-evaluation throughput (the optimizer hot path).

Measures candidate-evaluations/second of the incremental engine
(:class:`repro.core.incremental.CostEvaluator` swap deltas) against full
re-evaluation (:func:`repro.core.cost.evaluate_placement` on a rebuilt
placement per candidate) on an E9-scale instance: a 10⁵-access trace.
Reproduction target: ≥10× more evaluated moves per second, with every delta
exactly matching the reference evaluator.  The structured numbers land in
``results/BENCH_e18.json`` so future PRs can track the perf trajectory.
"""

import json
import random

from repro.analysis.experiments import ExperimentOutput
from repro.analysis.report import format_table
from repro.core.api import build_problem
from repro.core.baselines import random_placement
from repro.core.cost import evaluate_placement
from repro.core.incremental import CostEvaluator
from repro.dwm.config import DWMConfig
from repro.perf import measure_throughput, speedup
from repro.trace.synthetic import markov_trace

#: Geometries measured; the single-port lazy row is the headline number.
GEOMETRIES = (
    (1, "lazy"),
    (2, "lazy"),
    (1, "eager"),
)

NUM_ITEMS = 128
NUM_ACCESSES = 100_000


def _measure_geometry(ports, policy, min_seconds):
    trace = markov_trace(
        NUM_ITEMS, NUM_ACCESSES, locality=0.85, seed=18, write_fraction=0.2
    )
    config = DWMConfig.for_items(
        NUM_ITEMS, words_per_dbc=32, num_ports=ports, port_policy=policy
    )
    problem = build_problem(trace, config)
    placement = random_placement(problem, 0)
    items = list(problem.items)

    evaluator = CostEvaluator(problem, placement)
    # Exactness spot-check before timing anything.
    check_rng = random.Random(7)
    exact = True
    for _ in range(10):
        item_a, item_b = check_rng.sample(items, 2)
        delta = evaluator.swap_delta(item_a, item_b)
        reference = evaluate_placement(
            problem, placement.with_swapped(item_a, item_b), validate=False
        )
        exact = exact and (delta == reference - evaluator.total)

    incremental_rng = random.Random(42)

    def incremental_candidate():
        item_a, item_b = incremental_rng.sample(items, 2)
        evaluator.swap_delta(item_a, item_b)

    full_rng = random.Random(42)

    def full_candidate():
        item_a, item_b = full_rng.sample(items, 2)
        evaluate_placement(
            problem, placement.with_swapped(item_a, item_b), validate=False
        )

    incremental_candidate()  # warm caches before timing
    full_candidate()
    incremental = measure_throughput(
        incremental_candidate, min_seconds=min_seconds
    )
    full = measure_throughput(
        full_candidate, min_seconds=min_seconds, max_operations=50
    )
    return {
        "ports": ports,
        "policy": policy,
        "incremental_evals_per_sec": incremental.ops_per_second,
        "full_evals_per_sec": full.ops_per_second,
        "speedup": speedup(incremental, full),
        "deltas_exact": exact,
    }


def run_e18(min_seconds: float = 0.3) -> ExperimentOutput:
    rows = [
        _measure_geometry(ports, policy, min_seconds)
        for ports, policy in GEOMETRIES
    ]
    rendered = format_table(
        ("geometry", "full evals/s", "incremental evals/s", "speedup", "exact"),
        [
            (
                f"P={row['ports']},{row['policy']}",
                f"{row['full_evals_per_sec']:,.0f}",
                f"{row['incremental_evals_per_sec']:,.0f}",
                f"{row['speedup']:.1f}x",
                "yes" if row["deltas_exact"] else "NO",
            )
            for row in rows
        ],
        title=(
            f"Candidate-evaluation throughput, {NUM_ACCESSES:,}-access trace, "
            f"{NUM_ITEMS} items (E18)"
        ),
    )
    data = {
        "num_items": NUM_ITEMS,
        "num_accesses": NUM_ACCESSES,
        "by_geometry": {
            f"{row['ports']}p-{row['policy']}": row for row in rows
        },
        "headline_speedup": rows[0]["speedup"],
    }
    return ExperimentOutput(
        "e18", "Incremental evaluation throughput", data, rendered
    )


def test_e18_incremental_speedup(benchmark, record_artifact, results_dir):
    output = benchmark.pedantic(run_e18, rounds=1, iterations=1)
    record_artifact(output)
    (results_dir / "BENCH_e18.json").write_text(
        json.dumps(output.data, indent=2) + "\n", encoding="utf-8"
    )
    for row in output.data["by_geometry"].values():
        assert row["deltas_exact"]
        if row["ports"] == 1:
            # Reproduction target: ≥10× more candidate evaluations per
            # second than full re-evaluation on the 10⁵-access instance.
            assert row["speedup"] >= 10.0
        else:
            # Multi-port lazy deltas replay whole affected-DBC chains (the
            # port choice is state-dependent); the vectorised automaton
            # lands ~10× here, asserted with headroom for noisy machines.
            assert row["speedup"] >= 5.0
