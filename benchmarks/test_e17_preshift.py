"""E17 (extension) — confidence-gated speculative pre-shifting.

A per-DBC next-offset predictor hides demand shifts behind idle time; the
confidence gate makes the controller abstain on unpredictable kernels, so
latency never regresses.
"""

from repro.analysis.experiments import run_e17


def test_e17_preshift(benchmark, record_artifact):
    output = benchmark.pedantic(run_e17, rounds=1, iterations=1)
    record_artifact(output)
    for name, row in output.data.items():
        # The gate guarantees no latency regression (abstain when unsure).
        assert row["latency_reduction_percent"] >= -1e-9, name
        assert 0.0 <= row["prediction_accuracy"] <= 1.0, name
    # At least half the kernels see a solid latency win.
    strong = sum(
        1 for row in output.data.values()
        if row["latency_reduction_percent"] >= 10.0
    )
    assert strong >= len(output.data) // 2
