"""E19 — batch simulation throughput, parallel sweeps, warm-cache reruns.

Three measurements of the PR-2 throughput stack on the evaluation workloads:

1. **Simulation throughput** — simulations/second of the vectorized engine
   (:class:`repro.memory.batch_sim.BatchSimulator`, trace resolution
   amortized) vs the scalar ``DWMArrayModel`` replay on a 10⁵-access trace,
   with an exactness spot-check per geometry.  Reproduction target: ≥20×
   on the single-port lazy headline row.
2. **Parallel orchestration** — wall-clock of a 4-worker sweep grid and a
   2-worker ``run_experiments`` subset vs their serial baselines, with
   records/renders verified identical.  The ≥2.5× target is asserted only
   on machines with ≥4 CPUs (recorded regardless — a 1-CPU container can
   only confirm determinism, not speedup).
3. **Persistent cache** — a cold then warm run of the E4 sweep against a
   scratch cache directory; the warm rerun must hit for every placement
   (zero misses), render identically, and not be slower.

Structured numbers land in ``results/BENCH_e19.json`` for the perf
trajectory; the table goes to ``results/e19.txt``.
"""

import json
import os
import tempfile

from repro.analysis.cache import cache_scope
from repro.analysis.experiments import ExperimentOutput, run_e4, run_experiments
from repro.analysis.parallel import resolve_jobs
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep
from repro.core.api import build_problem
from repro.core.baselines import random_placement
from repro.dwm.config import DWMConfig
from repro.memory.spm import ScratchpadMemory
from repro.perf import Stopwatch, measure_throughput, speedup
from repro.trace.synthetic import markov_trace

#: Geometries measured; the single-port lazy row is the headline number.
GEOMETRIES = (
    (1, "lazy"),
    (2, "lazy"),
    (1, "eager"),
)

NUM_ITEMS = 96
NUM_ACCESSES = 100_000

SWEEP_JOBS = 4
EXPERIMENT_JOBS = 2


def _strip_runtime(records):
    return [
        (r.trace, r.method, r.words_per_dbc, r.num_ports, r.num_dbcs,
         r.total_shifts, r.num_accesses)
        for r in records
    ]


def _measure_geometry(ports, policy, min_seconds):
    trace = markov_trace(
        NUM_ITEMS, NUM_ACCESSES, locality=0.85, seed=19, write_fraction=0.2
    )
    config = DWMConfig.for_items(
        NUM_ITEMS, words_per_dbc=32, num_ports=ports, port_policy=policy
    )
    placement = random_placement(build_problem(trace, config), 0)
    spm = ScratchpadMemory(config, placement)

    # Exactness spot-check before timing anything.
    scalar_result = spm.simulate(trace, engine="scalar")
    vectorized_result = spm.simulate(trace, engine="vectorized")
    exact = (
        scalar_result.shifts == vectorized_result.shifts
        and scalar_result.per_dbc_shifts == vectorized_result.per_dbc_shifts
        and scalar_result.max_access_shifts == vectorized_result.max_access_shifts
    )

    # The SPM caches the resolved trace, so repeated vectorized runs measure
    # the amortized (batch-API) cost — the quantity sweeps and DSE pay.
    vectorized = measure_throughput(
        lambda: spm.simulate(trace, engine="vectorized"),
        min_seconds=min_seconds,
    )
    scalar = measure_throughput(
        lambda: spm.simulate(trace, engine="scalar"),
        min_seconds=min_seconds,
        max_operations=20,
    )
    return {
        "ports": ports,
        "policy": policy,
        "scalar_sims_per_sec": scalar.ops_per_second,
        "vectorized_sims_per_sec": vectorized.ops_per_second,
        "speedup": speedup(vectorized, scalar),
        "exact": exact,
    }


def _measure_parallel():
    """Wall-clock of parallel vs serial sweep grid and experiments subset.

    Records the *requested* job counts and the *effective* worker counts
    (``resolve_jobs`` caps at the host CPU count) next to the logical CPU
    count, so a recorded speedup can never masquerade as a 4-worker result
    measured on a 1-CPU container — and ``repro bench compare`` annotates
    rather than gates speedups across hosts with different capacity.
    """
    traces = [markov_trace(48, 20_000, seed=seed) for seed in range(4)]
    grid = dict(words_per_dbc_values=(16, 32), num_ports_values=(1, 2))
    with Stopwatch() as serial_watch:
        serial_records = sweep(traces, jobs=1, **grid)
    with Stopwatch() as parallel_watch:
        parallel_records = sweep(traces, jobs=SWEEP_JOBS, **grid)
    identical = _strip_runtime(serial_records) == _strip_runtime(parallel_records)

    experiment_ids = ["e1", "e9"]
    with Stopwatch() as experiments_serial_watch:
        serial_outputs = run_experiments(experiment_ids, jobs=1)
    with Stopwatch() as experiments_parallel_watch:
        parallel_outputs = run_experiments(experiment_ids, jobs=EXPERIMENT_JOBS)
    # E9 renders measured runtimes (non-deterministic); compare e1 only.
    experiments_identical = (
        serial_outputs[0].rendered == parallel_outputs[0].rendered
    )
    return {
        "cpu_count": os.cpu_count(),
        "sweep_jobs": SWEEP_JOBS,
        "effective_sweep_workers": resolve_jobs(SWEEP_JOBS),
        "effective_experiment_workers": resolve_jobs(EXPERIMENT_JOBS),
        "sweep_cells": len(serial_records),
        "sweep_serial_seconds": serial_watch.seconds,
        "sweep_parallel_seconds": parallel_watch.seconds,
        "sweep_speedup": serial_watch.seconds / max(parallel_watch.seconds, 1e-9),
        "sweep_records_identical": identical,
        "experiment_ids": experiment_ids,
        "experiments_jobs": EXPERIMENT_JOBS,
        "experiments_serial_seconds": experiments_serial_watch.seconds,
        "experiments_parallel_seconds": experiments_parallel_watch.seconds,
        "experiments_speedup": (
            experiments_serial_watch.seconds
            / max(experiments_parallel_watch.seconds, 1e-9)
        ),
        "experiments_rendered_identical": experiments_identical,
    }


def _measure_cache():
    """Cold vs warm E4 run against a scratch cache directory."""
    with tempfile.TemporaryDirectory(prefix="repro-e19-cache-") as tmp:
        with cache_scope(enabled=True, root=tmp) as cache:
            with Stopwatch() as cold_watch:
                cold = run_e4()
            cold_hits, cold_misses = cache.hits, cache.misses
            with Stopwatch() as warm_watch:
                warm = run_e4()
            warm_hits = cache.hits - cold_hits
            warm_misses = cache.misses - cold_misses
            entries = len(cache)
    return {
        "cold_seconds": cold_watch.seconds,
        "warm_seconds": warm_watch.seconds,
        "warmup_speedup": cold_watch.seconds / max(warm_watch.seconds, 1e-9),
        "cold_hits": cold_hits,
        "cold_misses": cold_misses,
        "warm_hits": warm_hits,
        "warm_misses": warm_misses,
        "entries": entries,
        "rendered_identical": cold.rendered == warm.rendered,
    }


def run_e19(min_seconds: float = 0.3) -> ExperimentOutput:
    simulation_rows = [
        _measure_geometry(ports, policy, min_seconds)
        for ports, policy in GEOMETRIES
    ]
    parallel = _measure_parallel()
    cache = _measure_cache()

    table_rows = [
        (
            f"P={row['ports']},{row['policy']}",
            f"{row['scalar_sims_per_sec']:.1f}",
            f"{row['vectorized_sims_per_sec']:.1f}",
            f"{row['speedup']:.1f}x",
            "yes" if row["exact"] else "NO",
        )
        for row in simulation_rows
    ]
    table_rows.append(
        (
            f"sweep x{parallel['effective_sweep_workers']}/"
            f"{parallel['sweep_jobs']} workers",
            f"{parallel['sweep_serial_seconds']:.2f}s",
            f"{parallel['sweep_parallel_seconds']:.2f}s",
            f"{parallel['sweep_speedup']:.2f}x",
            "yes" if parallel["sweep_records_identical"] else "NO",
        )
    )
    table_rows.append(
        (
            f"experiments x{parallel['effective_experiment_workers']}/"
            f"{parallel['experiments_jobs']} workers",
            f"{parallel['experiments_serial_seconds']:.2f}s",
            f"{parallel['experiments_parallel_seconds']:.2f}s",
            f"{parallel['experiments_speedup']:.2f}x",
            "yes" if parallel["experiments_rendered_identical"] else "NO",
        )
    )
    table_rows.append(
        (
            "E4 warm-cache rerun",
            f"{cache['cold_seconds']:.2f}s",
            f"{cache['warm_seconds']:.2f}s",
            f"{cache['warmup_speedup']:.1f}x",
            "yes" if cache["rendered_identical"] else "NO",
        )
    )
    rendered = format_table(
        ("measurement", "baseline", "optimized", "speedup", "identical"),
        table_rows,
        title=(
            f"Batch simulation / orchestration / cache throughput, "
            f"{NUM_ACCESSES:,}-access trace (E19, {parallel['cpu_count']} CPU)"
        ),
    )
    data = {
        "num_items": NUM_ITEMS,
        "num_accesses": NUM_ACCESSES,
        "simulation": {
            f"{row['ports']}p-{row['policy']}": row for row in simulation_rows
        },
        "parallel": parallel,
        "cache": cache,
        "headline_speedup": simulation_rows[0]["speedup"],
    }
    return ExperimentOutput("e19", "Batch simulation throughput", data, rendered)


def test_e19_batch_sim(benchmark, record_artifact, results_dir):
    output = benchmark.pedantic(run_e19, rounds=1, iterations=1)
    record_artifact(output)
    (results_dir / "BENCH_e19.json").write_text(
        json.dumps(output.data, indent=2) + "\n", encoding="utf-8"
    )
    for row in output.data["simulation"].values():
        assert row["exact"]
        if row["ports"] == 1 and row["policy"] == "lazy":
            # Reproduction target: ≥20× simulation throughput on the
            # 10⁵-access trace (vectorized batch engine vs scalar replay).
            assert row["speedup"] >= 20.0
        else:
            assert row["speedup"] >= 10.0
    parallel = output.data["parallel"]
    assert parallel["sweep_records_identical"]
    assert parallel["experiments_rendered_identical"]
    assert parallel["effective_sweep_workers"] == min(
        SWEEP_JOBS, os.cpu_count() or 1
    )
    if parallel["effective_sweep_workers"] >= 4:
        # Reproduction target: ≥2.5× wall-clock for the 4-worker sweep.
        # Only assertable with real parallel hardware; on smaller hosts the
        # measured number is still recorded in BENCH_e19.json.
        assert parallel["sweep_speedup"] >= 2.5
    cache = output.data["cache"]
    assert cache["rendered_identical"]
    assert cache["warm_misses"] == 0
    assert cache["warm_hits"] > 0
    assert cache["warm_hits"] == cache["cold_misses"]
    assert cache["warm_seconds"] <= cache["cold_seconds"]
