"""E15 (extension) — DWM cache: runtime reorganisation vs static layout.

A deliberately negative result: with LRU-victim filling and honest swap
accounting, self-organising slot reorganisation costs more shifts than it
saves on every workload — motivating the paper's compile-time placement over
hardware reshuffling.
"""

from repro.analysis.experiments import run_e15


def test_e15_cache(benchmark, record_artifact):
    output = benchmark.pedantic(run_e15, rounds=1, iterations=1)
    record_artifact(output)
    for name, row in output.data.items():
        # Hit rate is policy-invariant (checked in unit tests); here we pin
        # the headline shape: reorganisation never wins, and the aggressive
        # policy is at least as bad as the incremental one.
        assert row["promote_ratio"] >= 1.0 - 1e-9, name
        assert row["mru_ratio"] >= row["promote_ratio"] - 0.15, name
