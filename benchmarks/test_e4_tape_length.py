"""E4 — sensitivity of the shift reduction to DBC length (L).

Sweeps L in {16, 32, 64, 128} over the six sweep kernels and reports the
heuristic's geometric-mean normalized shifts at each length.
"""

from repro.analysis.experiments import run_e4


def test_e4_tape_length(benchmark, record_artifact):
    output = benchmark.pedantic(run_e4, rounds=1, iterations=1)
    record_artifact(output)
    normalized = output.data["normalized"]
    assert set(normalized) == {16, 32, 64, 128}
    # The heuristic helps at every tape length.
    assert all(value < 1.0 for value in normalized.values())
