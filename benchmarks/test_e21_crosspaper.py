"""E21 — cross-paper placement comparison gate.

Runs :func:`repro.analysis.experiments.run_e21` — the DAC'15 heuristic
next to ShiftsReduce (arXiv 1903.03597) and the generalized port-aware
strategies (arXiv 1912.03507) over the seed kernels plus synthetic mixes,
on single- and two-port geometries — and asserts the acceptance gates:

* on every row both cross-paper methods cost no more than the paper
  heuristic (a structural guarantee: the heuristic placement stays in
  their candidate portfolios, so a regression here is a solver bug);
* every method beats (or ties) the declaration baseline;
* the MinLA solver probe reports a certified optimum from whichever
  backend is installed (CP-SAT with ortools, the subset DP without).

The rendered table goes to ``results/e21.txt`` and the structured numbers
to ``results/BENCH_e21.json`` for the ``repro bench compare`` gate.
"""

import json

from repro.analysis.experiments import run_e21


def test_e21_crosspaper(benchmark, record_artifact, results_dir):
    output = benchmark.pedantic(run_e21, rounds=1, iterations=1)
    record_artifact(output)
    (results_dir / "BENCH_e21.json").write_text(
        json.dumps(output.data, indent=2) + "\n", encoding="utf-8"
    )
    rows = {key: cell for key, cell in output.data.items() if not key.startswith("_")}
    assert rows, "E21 produced no comparison rows"
    for name, cell in rows.items():
        assert cell["shiftsreduce"] <= cell["heuristic"], (name, cell)
        assert cell["generalized"] <= cell["heuristic"], (name, cell)
        assert cell["heuristic"] <= cell["declaration"], (name, cell)
    solver = output.data["_solver"]
    assert solver["certified"], solver
    expected_backend = "cpsat" if solver["cpsat_available"] else "dp"
    assert solver["backend"] == expected_backend, solver
