"""E14 (extension) — SPM allocation under capacity pressure.

Knapsack allocation of whole objects with the remainder in background
memory; sweeping the capacity shows latency falling as the hit fraction
rises, with shift-aware placement of the resident set opening a gap.
"""

from repro.analysis.experiments import run_e14


def test_e14_allocation(benchmark, record_artifact):
    output = benchmark.pedantic(run_e14, rounds=1, iterations=1)
    record_artifact(output)
    cells = output.data["by_fraction"]
    fractions = sorted(cells)
    # More capacity -> higher hit fraction and lower latency, monotonically.
    hits = [cells[f]["hit_fraction"] for f in fractions]
    latencies = [cells[f]["latency_heuristic"] for f in fractions]
    assert hits == sorted(hits)
    assert latencies == sorted(latencies, reverse=True)
    # Shift-aware placement of the resident set never loses to declaration.
    for fraction in fractions:
        assert cells[fraction]["latency_heuristic"] <= (
            cells[fraction]["latency_declaration"] + 1e-6
        )
