"""E6 — total energy normalized to DWM with declaration placement.

Reports the heuristic's DWM energy and the iso-capacity SRAM reference for
every benchmark; shift reductions translate into total-energy reductions,
and placement-optimized DWM undercuts SRAM on average.
"""

from repro.analysis.experiments import run_e6


def test_e6_energy(benchmark, record_artifact):
    output = benchmark.pedantic(run_e6, rounds=1, iterations=1)
    record_artifact(output)
    geomean = output.data["geomean"]
    # Placement reduces DWM energy on average.
    assert geomean["heuristic"] < 1.0
    # Optimized DWM beats the SRAM reference on average.
    assert geomean["heuristic"] < geomean["sram"]
    # Per-benchmark the heuristic never increases energy.
    for name, row in output.data.items():
        if name != "geomean":
            assert row["heuristic"] <= 1.0 + 1e-9, name
