"""E12 (extension) — wear balance vs shift minimality.

Shift-minimizing placement concentrates wear on few DBCs; the wear-aware
re-balancing variant levels the exposure within a bounded (10%) shift
overhead.
"""

from repro.analysis.experiments import run_e12


def test_e12_wear(benchmark, record_artifact):
    output = benchmark.pedantic(run_e12, rounds=1, iterations=1)
    record_artifact(output)
    geomean = output.data["geomean"]
    assert geomean["balanced_ratio"] <= geomean["heuristic_ratio"]
    for name, row in output.data.items():
        if name == "geomean":
            continue
        # Re-balancing never makes the wear ratio worse...
        assert row["balanced_ratio"] <= row["heuristic_ratio"] + 1e-9, name
        # ...and respects the shift budget.
        assert row["shift_overhead_percent"] <= 10.0 + 1e-9, name
