"""E13 (extension) — online adaptive placement on phase-changing workloads.

Three long phases over disjoint working sets: a first-phase profile decays,
the online placer (paying real migration costs) recovers most of the oracle
static placement's advantage.
"""

from repro.analysis.experiments import run_e13


def test_e13_online(benchmark, record_artifact):
    output = benchmark.pedantic(run_e13, rounds=1, iterations=1)
    record_artifact(output)
    data = output.data
    # Online beats the stale static profile decisively...
    assert data["online"] < 0.75 * data["static_first_window"]
    # ...while the whole-trace oracle remains the lower bound.
    assert data["oracle_static"] <= data["online"]
    assert data["online_replacements"] >= 1
