"""E7 — access-latency improvement from optimized placement.

Shift reductions translate linearly into scratchpad access latency under the
serialised-bank model; reports normalized latency and speedup per benchmark.
"""

from repro.analysis.experiments import run_e7


def test_e7_latency(benchmark, record_artifact):
    output = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    record_artifact(output)
    geomean = output.data["geomean"]
    assert geomean["normalized_latency"] < 1.0
    assert geomean["speedup"] > 1.0
    for name, row in output.data.items():
        if name != "geomean":
            assert row["normalized_latency"] <= 1.0 + 1e-9, name
